module Vv = Edb_vv.Version_vector
module Message = Edb_core.Message
module Node = Edb_core.Node
module Peer_cache = Edb_core.Peer_cache
module Wire_state = Edb_core.Peer_cache.Wire_state
module Counters = Edb_metrics.Counters
module W = Codec.Writer
module R = Codec.Reader

let corrupt fmt = Printf.ksprintf (fun msg -> raise (R.Corrupt msg)) fmt

let max_version = 2

(* Frame layout, inside the usual Codec envelope (Adler-32 trailer):

     byte  version     codec version of the body (1 or 2)
     byte  advertised  sender's own maximum version
     byte  kind        0 = request, 1 = reply, 2 = nak
     ...               v2 only: varint request id
     ...               body ({!Wire} for v1, {!Wire_v2} for v2)

   Negotiation is pessimistic-start: a node speaks v1 to a peer until
   a decoded frame proves the peer advertises higher, so the first
   request of a session pair is always v1 but its reply can already be
   v2 (the request carried the requester's advertisement). Baselines,
   like the rest of {!Edb_core.Peer_cache}, are volatile — crash
   recovery forgets them and sessions restart at v1/absolute, which is
   the whole safety argument (DESIGN.md §8). *)

let kind_request = 0

let kind_reply = 1

let kind_nak = 2

(* One-way best-effort push frame (DESIGN.md §10). v2-only: it exists
   only after negotiation has proven both ends speak v2, so it never
   needs a v1 form and a v1 peer never sees one. *)
let kind_push = 3

type decoded_reply = Reply of Message.propagation_reply * int | Nak of int

let wire_state node ~peer = Peer_cache.wire_state (Node.peer_cache node) ~peer

let negotiated node (st : Wire_state.t) = min (Node.wire_version node) st.peer_version

let header w ~version ~own ~kind =
  W.byte w version;
  W.byte w (min own 0xFF);
  W.byte w kind

let decode_header r =
  let version = R.byte r in
  if version < 1 || version > max_version then
    corrupt "unsupported frame version %d" version;
  let advertised = R.byte r in
  if advertised < 1 then corrupt "frame advertises version %d" advertised;
  let kind = R.byte r in
  if
    kind <> kind_request && kind <> kind_reply && kind <> kind_nak
    && kind <> kind_push
  then corrupt "unknown frame kind %d" kind;
  if kind = kind_push && version < 2 then
    corrupt "push frame at codec version %d" version;
  (version, advertised, kind)

(* Dimension and shard hygiene: a frame that decodes structurally but
   does not fit this node's cluster shape must surface as [Corrupt]
   (answered by a Nak / dropped session), never as an
   [Invalid_argument] from deep inside vector merging. The v2 decoders
   check dimensions as they read; the v1 forms encode them, so they
   are checked here. *)
let validate_request ~n ~shards (req : Message.propagation_request) =
  if req.recipient < 0 || req.recipient >= n then
    corrupt "request recipient %d outside cluster of %d" req.recipient n;
  if Vv.dimension req.recipient_dbvv <> n then
    corrupt "request DBVV dimension %d, expected %d"
      (Vv.dimension req.recipient_dbvv) n;
  let sc = Array.length req.recipient_shard_dbvvs in
  if sc <> 0 && sc <> shards then
    corrupt "request carries %d shard DBVVs, expected 0 or %d" sc shards;
  Array.iter
    (fun vv ->
      if Vv.dimension vv <> n then
        corrupt "request shard DBVV dimension %d, expected %d" (Vv.dimension vv)
          n)
    req.recipient_shard_dbvvs

let validate_reply ~n ~shards (reply : Message.propagation_reply) =
  let check_tails tails =
    if Array.length tails <> n then
      corrupt "reply tail vector dimension %d, expected %d" (Array.length tails)
        n;
    Array.iter
      (fun tail ->
        List.iter
          (fun (record : Edb_log.Log_record.t) ->
            if record.seq < 1 then corrupt "reply log record sequence below 1")
          tail)
      tails
  in
  let check_items items =
    List.iter
      (fun (s : Message.shipped_item) ->
        if Vv.dimension s.ivv <> n then
          corrupt "shipped item %S IVV dimension %d, expected %d" s.name
            (Vv.dimension s.ivv) n;
        match s.payload with
        | Message.Whole _ -> ()
        | Message.Delta ops ->
          List.iter
            (fun (dop : Message.delta_op) ->
              if dop.origin < 0 || dop.origin >= n then
                corrupt "delta-op origin %d outside dimension %d" dop.origin n)
            ops)
      items
  in
  match reply with
  | Message.You_are_current -> ()
  | Message.Propagate { tails; items } ->
    check_tails tails;
    check_items items
  | Message.Propagate_sharded deltas ->
    List.iter
      (fun (d : Message.shard_delta) ->
        if d.shard < 0 || d.shard >= shards then
          corrupt "shard delta for shard %d, node has %d" d.shard shards;
        check_tails d.tails;
        check_items d.items)
      deltas

(* ------------------------------------------------------------------ *)
(* Requester side                                                      *)
(* ------------------------------------------------------------------ *)

let encode_request node ~dst =
  let st = wire_state node ~peer:dst in
  let version = negotiated node st in
  let req = Node.propagation_request node in
  W.with_scratch (fun w ->
      header w ~version ~own:(Node.wire_version node) ~kind:kind_request;
      if version >= 2 then begin
        let id = st.next_id in
        st.next_id <- id + 1;
        W.varint w id;
        let baseline =
          match st.acked with Some b -> Some (b.id, b.vv) | None -> None
        in
        Wire_v2.encode_propagation_request w ?baseline req;
        (* The baseline for future deltas must be a stable copy: the
           node's live DBVV keeps growing under it. *)
        st.last_sent <-
          Some { Wire_state.id; vv = Vv.copy req.recipient_dbvv }
      end
      else Wire.encode_propagation_request w req;
      W.contents w)

let decode_reply node ~src data =
  let r = R.create data in
  let version, advertised, kind = decode_header r in
  let st = wire_state node ~peer:src in
  st.peer_version <- advertised;
  let req_id = if version >= 2 then R.varint r else 0 in
  if req_id < 0 then corrupt "negative request id %d" req_id;
  match kind with
  | k when k = kind_nak ->
    R.expect_end r;
    (* The source could not decode our request — it lost the baseline
       (restart, slot eviction under reordering). Dropping [acked]
       makes the retry ship an absolute vector, restoring liveness. *)
    (match st.last_sent with
    | Some b when req_id = 0 || b.id = req_id -> st.acked <- None
    | _ -> ());
    Nak req_id
  | k when k = kind_reply ->
    let n = Node.dimension node in
    let reply =
      if version >= 2 then Wire_v2.decode_propagation_reply r ~n
      else Wire.decode_propagation_reply r
    in
    R.expect_end r;
    validate_reply ~n ~shards:(Node.shards node) reply;
    (* A reply echoing our newest request id proves the peer decoded
       that request and now stores its DBVV — from here on it is a
       sound delta baseline. Replies to older requests prove nothing
       about what the peer still has, so only [last_sent] can ack. *)
    (match st.last_sent with
    | Some b when req_id > 0 && b.id = req_id -> st.acked <- Some b
    | _ -> ());
    Reply (reply, req_id)
  | _ -> corrupt "expected a reply frame, got a request"

(* ------------------------------------------------------------------ *)
(* Source side                                                         *)
(* ------------------------------------------------------------------ *)

let decode_request node ~src data =
  let r = R.create data in
  let version, advertised, kind = decode_header r in
  let st = wire_state node ~peer:src in
  st.peer_version <- advertised;
  if kind <> kind_request then corrupt "expected a request frame";
  let n = Node.dimension node in
  if version >= 2 then begin
    let req_id = R.varint r in
    if req_id < 1 then corrupt "request id %d below 1" req_id;
    let resolve id =
      match (st.committed, st.candidate) with
      | Some b, _ when b.Wire_state.id = id -> Some b.vv
      | _, Some b when b.Wire_state.id = id -> Some b.vv
      | _ -> None
    in
    let req, used_baseline = Wire_v2.decode_propagation_request r ~n ~resolve in
    R.expect_end r;
    validate_request ~n ~shards:(Node.shards node) req;
    (* Two-slot retention. The newest decoded request always becomes
       [candidate]. A request that referenced [candidate] proves the
       requester saw that request's reply while building this one, so
       the older slot can never be referenced again — promote it to
       [committed] and retire the previous committed vector. Under
       reordering a still-referenced slot can be evicted; the decode
       mismatch that causes is answered by a Nak, and the requester
       falls back to absolute (liveness, not safety). *)
    (match used_baseline with
    | Some id -> (
      match st.candidate with
      | Some c when c.Wire_state.id = id -> st.committed <- Some c
      | _ -> ())
    | None -> ());
    st.candidate <- Some { Wire_state.id = req_id; vv = req.recipient_dbvv };
    (req, req_id)
  end
  else begin
    let req = Wire.decode_propagation_request r in
    R.expect_end r;
    validate_request ~n ~shards:(Node.shards node) req;
    (req, 0)
  end

let encode_reply node ~dst ~req_id reply =
  let st = wire_state node ~peer:dst in
  let version = negotiated node st in
  W.with_scratch (fun w ->
      header w ~version ~own:(Node.wire_version node) ~kind:kind_reply;
      if version >= 2 then begin
        W.varint w req_id;
        Wire_v2.encode_propagation_reply w reply
      end
      else Wire.encode_propagation_reply w reply;
      W.contents w)

let encode_nak node ~dst ~req_id =
  let st = wire_state node ~peer:dst in
  let version = negotiated node st in
  W.with_scratch (fun w ->
      header w ~version ~own:(Node.wire_version node) ~kind:kind_nak;
      if version >= 2 then W.varint w req_id;
      W.contents w)

(* Best-effort request id from a frame that failed to decode: enough
   header usually survives (the envelope checksum passed, so if the
   body is unreadable it is a semantic mismatch like a lost baseline,
   not bit rot). *)
let request_id_of_frame data =
  match
    let r = R.create data in
    let version, _advertised, kind = decode_header r in
    if version >= 2 && kind = kind_request then R.varint r else 0
  with
  | id when id > 0 -> id
  | _ -> 0
  | exception R.Corrupt _ -> 0

let respond ?(domains = 1) node ~src frame =
  let c = Node.counters node in
  let out =
    match decode_request node ~src frame with
    | req, req_id ->
      let reply = Node.handle_propagation_request ~domains node req in
      c.bytes_sent <- c.bytes_sent + Message.reply_bytes reply;
      encode_reply node ~dst:src ~req_id reply
    | exception R.Corrupt _ ->
      (* Nak: modeled as one id-sized field, like You_are_current. *)
      c.bytes_sent <- c.bytes_sent + Message.reply_bytes Message.You_are_current;
      encode_nak node ~dst:src ~req_id:(request_id_of_frame frame)
  in
  c.messages <- c.messages + 1;
  c.wire_bytes_sent <- c.wire_bytes_sent + String.length out;
  out

(* ------------------------------------------------------------------ *)
(* Push frames (one-way, best-effort)                                  *)
(* ------------------------------------------------------------------ *)

(* The stream only flows to peers proven to speak v2: our own version
   allows it and a decoded frame from [dst] advertised >= 2. Until
   then the channel's queue for that peer fills and sheds — latency
   lost, never correctness. *)
let push_ready node ~dst =
  Node.wire_version node >= 2 && (wire_state node ~peer:dst).peer_version >= 2

let encode_push node ~dst updates =
  let st = wire_state node ~peer:dst in
  if negotiated node st < 2 then
    invalid_arg "Frame.encode_push: peer has not negotiated wire v2";
  W.with_scratch (fun w ->
      header w ~version:2 ~own:(Node.wire_version node) ~kind:kind_push;
      (* The request-id slot every v2 frame carries; pushes are one-way
         and unacknowledged, so it is always zero. *)
      W.varint w 0;
      Wire_v2.encode_push w updates;
      W.contents w)

let decode_push node ~src data =
  let r = R.create data in
  let version, advertised, kind = decode_header r in
  let st = wire_state node ~peer:src in
  st.peer_version <- advertised;
  if kind <> kind_push then corrupt "expected a push frame, got kind %d" kind;
  if version < 2 then corrupt "push frame at codec version %d" version;
  let req_id = R.varint r in
  if req_id <> 0 then corrupt "push frame carries request id %d" req_id;
  let n = Node.dimension node in
  let updates = Wire_v2.decode_push r ~n in
  R.expect_end r;
  updates

(* ------------------------------------------------------------------ *)
(* Framing over byte streams                                           *)
(* ------------------------------------------------------------------ *)

(* A frame is self-checking (Adler-32 trailer) but not self-delimiting,
   so a byte stream needs a length prefix: 4-byte little-endian record
   length, then the record bytes. The reader accumulates arbitrary
   chunks — a TCP segment can end mid-prefix, mid-header or mid-checksum
   — and yields complete records; validation of the record itself stays
   with the frame decoders. *)

let max_stream_record = 1 lsl 26 (* 64 MiB: no legitimate frame comes close *)

let to_wire frame =
  let len = String.length frame in
  if len > max_stream_record then invalid_arg "Frame.to_wire: record too large";
  let prefix = Bytes.create 4 in
  Bytes.set_int32_le prefix 0 (Int32.of_int len);
  Bytes.to_string prefix ^ frame

module Reader = struct
  type t = {
    mutable buf : Bytes.t;  (* accumulated unconsumed bytes *)
    mutable len : int;  (* live bytes in [buf], starting at 0 *)
  }

  let create () = { buf = Bytes.create 4_096; len = 0 }

  let pending t = t.len

  let feed t ?(off = 0) ?len data =
    let len = match len with Some l -> l | None -> String.length data - off in
    if off < 0 || len < 0 || off + len > String.length data then
      invalid_arg "Frame.Reader.feed: bad slice";
    let needed = t.len + len in
    if needed > Bytes.length t.buf then begin
      let cap = max needed (2 * Bytes.length t.buf) in
      let bigger = Bytes.create cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    Bytes.blit_string data off t.buf t.len len;
    t.len <- needed

  let next t =
    if t.len < 4 then None
    else begin
      let claimed = Int32.to_int (Bytes.get_int32_le t.buf 0) land 0xFFFFFFFF in
      if claimed > max_stream_record then
        raise
          (R.Corrupt
             (Printf.sprintf "stream record claims %d bytes (max %d)" claimed
                max_stream_record));
      if t.len - 4 < claimed then None
      else begin
        let record = Bytes.sub_string t.buf 4 claimed in
        let rest = t.len - 4 - claimed in
        Bytes.blit t.buf (4 + claimed) t.buf 0 rest;
        t.len <- rest;
        Some record
      end
    end
end

(* ------------------------------------------------------------------ *)
(* In-process framed sessions                                          *)
(* ------------------------------------------------------------------ *)

let pull ?(domains = 1) ~recipient ~source () =
  if Node.shards recipient <> Node.shards source then
    invalid_arg "Frame.pull: recipient and source shard counts differ";
  let rc = Node.counters recipient in
  let round () =
    let frame = encode_request recipient ~dst:(Node.id source) in
    rc.messages <- rc.messages + 1;
    rc.bytes_sent <-
      rc.bytes_sent + Message.request_bytes (Node.propagation_request recipient);
    rc.wire_bytes_sent <- rc.wire_bytes_sent + String.length frame;
    let reply_frame = respond ~domains source ~src:(Node.id recipient) frame in
    decode_reply recipient ~src:(Node.id source) reply_frame
  in
  let apply = function
    | Reply (Message.You_are_current, _) -> Node.Already_current
    | Reply (((Message.Propagate _ | Message.Propagate_sharded _) as reply), _)
      ->
      Node.Pulled
        (Node.accept_propagation ~domains recipient ~source:(Node.id source)
           reply)
    | Nak _ ->
      (* Unreachable after an absolute retry: an absolute request
         cannot reference a lost baseline, and in-process delivery
         cannot corrupt bytes. *)
      corrupt "Frame.pull: absolute request rejected"
  in
  match round () with
  | Nak _ ->
    (* The source lost our baseline; the Nak already cleared [acked],
       so this retry ships an absolute vector. *)
    apply (round ())
  | r -> apply r

let sync_pair ?(domains = 1) a b =
  let (_ : Node.pull_result) = pull ~domains ~recipient:a ~source:b () in
  let (_ : Node.pull_result) = pull ~domains ~recipient:b ~source:a () in
  ()

(* ------------------------------------------------------------------ *)
(* Pretty-printing (edb_cli wire)                                      *)
(* ------------------------------------------------------------------ *)

let pp_vv_array buf a =
  Buffer.add_char buf '<';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    a;
  Buffer.add_char buf '>'

let describe ?n data =
  let buf = Buffer.create 256 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let r = R.create data in
  let version, advertised, kind = decode_header r in
  out "frame: version %d, advertises %d, %s\n" version advertised
    (match kind with 0 -> "request" | 1 -> "reply" | 3 -> "push" | _ -> "nak");
  let req_id = if version >= 2 then R.varint r else 0 in
  if version >= 2 then out "request id: %d\n" req_id;
  let dim =
    match n with
    | Some n -> n
    | None ->
      (* v1 bodies encode their dimensions; v2 bodies need one. *)
      if version >= 2 then
        corrupt "a v2 frame needs the cluster dimension (pass -n)"
      else 0
  in
  let describe_reply (reply : Message.propagation_reply) =
    let tails_total tails =
      Array.fold_left (fun acc tail -> acc + List.length tail) 0 tails
    in
    let shipped items =
      List.iter
        (fun (s : Message.shipped_item) ->
          out "    item %S: %s, ivv " s.name
            (match s.payload with
            | Message.Whole v -> Printf.sprintf "whole value (%d bytes)" (String.length v)
            | Message.Delta ops -> Printf.sprintf "%d delta ops" (List.length ops));
          pp_vv_array buf (Vv.to_array s.ivv);
          out "\n")
        items
    in
    match reply with
    | Message.You_are_current -> out "you-are-current\n"
    | Message.Propagate { tails; items } ->
      out "propagate: %d log records, %d items\n" (tails_total tails)
        (List.length items);
      shipped items
    | Message.Propagate_sharded deltas ->
      out "propagate (sharded): %d shard deltas\n" (List.length deltas);
      List.iter
        (fun (d : Message.shard_delta) ->
          out "  shard %d: %d log records, %d items\n" d.shard
            (tails_total d.tails) (List.length d.items);
          shipped d.items)
        deltas
  in
  (match kind with
  | 0 ->
    if version >= 2 then begin
      let recipient = R.varint r in
      out "recipient: %d\n" recipient;
      (match R.byte r with
      | 0 ->
        let vv = Wire_v2.decode_vv r ~n:dim in
        out "dbvv (absolute): ";
        pp_vv_array buf (Vv.to_array vv);
        out "\n"
      | 1 ->
        (* A delta cannot be resolved without the source's slots;
           print it symbolically. *)
        let id = R.varint r in
        let sum = R.varint r in
        out "dbvv (delta against baseline %d, checksum %#x):\n" id sum;
        let count = R.varint r in
        out "  %d changed components:" count;
        for _ = 1 to count do
          let j = R.varint r in
          let d = R.varint r in
          out " +%d@%d" d j
        done;
        out "\n"
      | tag -> corrupt "unknown request-DBVV tag %d" tag);
      let shard_count = R.varint r in
      out "shard dbvvs: %d\n" shard_count;
      for s = 0 to shard_count - 1 do
        let vv = Wire_v2.decode_vv r ~n:dim in
        out "  shard %d: " s;
        pp_vv_array buf (Vv.to_array vv);
        out "\n"
      done
    end
    else begin
      let req = Wire.decode_propagation_request r in
      out "recipient: %d\ndbvv: " req.recipient;
      pp_vv_array buf (Vv.to_array req.recipient_dbvv);
      out "\nshard dbvvs: %d\n" (Array.length req.recipient_shard_dbvvs);
      Array.iteri
        (fun s vv ->
          out "  shard %d: " s;
          pp_vv_array buf (Vv.to_array vv);
          out "\n")
        req.recipient_shard_dbvvs
    end
  | 1 ->
    describe_reply
      (if version >= 2 then Wire_v2.decode_propagation_reply r ~n:dim
       else Wire.decode_propagation_reply r)
  | 3 ->
    let updates = Wire_v2.decode_push r ~n:dim in
    out "push: %d updates\n" (List.length updates);
    List.iter
      (fun (u : Message.push_update) ->
        out "  item %S: seq %d, value %d bytes, ivv " u.item u.seq
          (String.length u.value);
        pp_vv_array buf (Vv.to_array u.ivv);
        out "\n")
      updates
  | _ -> ());
  R.expect_end r;
  Buffer.contents buf

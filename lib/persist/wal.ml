(* Adler-32, matching Codec's trailer algorithm. *)
let adler32 data =
  let modulus = 65_521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod modulus;
      b := (!b + !a) mod modulus)
    data;
  (!b lsl 16) lor !a

type writer = { channel : out_channel; path : string }

let open_writer ~path =
  let channel = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { channel; path }

module Fault = Edb_fault.Fault

let append ?(flush = true) w record =
  let header = Bytes.create 8 in
  Bytes.set_int64_le header 0 (Int64.of_int (String.length record));
  output_bytes w.channel header;
  if Fault.active "wal.append.partial" then begin
    (* Torn-write injection: flush the header plus half the payload so
       that much is on disk, then give the failpoint its chance to
       "crash". If it fires, the file ends in a torn tail exactly as a
       real mid-write power cut would leave it; if the trigger says not
       yet, finish the frame normally (a mid-frame flush is invisible). *)
    let half = String.length record / 2 in
    output_string w.channel (String.sub record 0 half);
    Stdlib.flush w.channel;
    Fault.hit "wal.append.partial";
    output_string w.channel (String.sub record half (String.length record - half))
  end
  else output_string w.channel record;
  let trailer = Bytes.create 4 in
  Bytes.set_int32_le trailer 0 (Int32.of_int (adler32 record));
  output_bytes w.channel trailer;
  if flush then Stdlib.flush w.channel

(* Group commit: callers append several records with [~flush:false] and
   release the whole batch with one [sync]. Until the sync, the records
   live in the channel buffer only — a crash loses the unsynced suffix
   as if those appends never happened (each is a complete frame, so
   replay stops cleanly at the synced prefix, or at worst in the torn
   tail of the record being written when the crash hit the flush
   itself). *)
let sync w = Stdlib.flush w.channel

let close_writer w = close_out w.channel

type replay_result = { records : int; torn_tail : bool }

let replay ~path ~f =
  if not (Sys.file_exists path) then Ok { records = 0; torn_tail = false }
  else
    match open_in_bin path with
    | exception Sys_error msg -> Error ("cannot open WAL: " ^ msg)
    | ic ->
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let limit = String.length data in
      (* A frame that runs off the end of the file is the torn tail of
         the last append — expected after a crash, everything before it
         is sound. A frame that is fully present but does not checksum
         (or claims an absurd length) is damage to data that was once
         durably written: silently dropping it, and everything after it,
         would un-acknowledge updates other replicas may already have
         observed, so that is a hard error. *)
      let rec loop pos count =
        if pos = limit then Ok { records = count; torn_tail = false }
        else if pos + 8 > limit then Ok { records = count; torn_tail = true }
        else
          let len = Int64.to_int (String.get_int64_le data pos) in
          if len < 0 then
            Error
              (Printf.sprintf
                 "WAL damaged: record %d at offset %d has negative length %d" count
                 pos len)
          else if pos + 8 + len + 4 > limit then Ok { records = count; torn_tail = true }
          else
            let record = String.sub data (pos + 8) len in
            let stored =
              Int32.to_int (String.get_int32_le data (pos + 8 + len)) land 0xFFFFFFFF
            in
            if stored <> adler32 record then
              Error
                (Printf.sprintf
                   "WAL damaged: checksum mismatch in record %d at offset %d" count
                   pos)
            else begin
              f record;
              loop (pos + 8 + len + 4) (count + 1)
            end
      in
      loop 0 0

let reset ~path =
  let oc = open_out_gen [ Open_trunc; Open_creat; Open_binary ] 0o644 path in
  close_out oc

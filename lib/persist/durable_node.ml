module Node = Edb_core.Node
module Message = Edb_core.Message
module Fault = Edb_fault.Fault

type membership_op = Extend of { name : int } | Retire of { slot : int; name : int }

type t = {
  (* Mutable: membership reshapes (dimension extension on join, component
     retirement) replace the node wholesale — every vector is rebuilt. *)
  mutable node : Node.t;
  dir : string;
  mutable wal : Wal.writer;
  mutable journal_records : int;
  (* Membership ops applied since the last checkpoint, oldest first:
     the replayed ones plus any appended by this process. Recovery hands
     them to the membership layer so it can rebuild its view (epoch,
     roster) and re-judge any standing retirement fence from the
     recovered DBVVs — acknowledgements are deliberately not persisted,
     exactly as AcceptPropagation re-judges freshness on replay. *)
  mutable membership : membership_op list;
  (* Group commit (opt-in, daemon event loop): with [group_commit] set,
     [journal] appends without flushing and [sync] releases the whole
     batch with one flush. [unsynced] counts records owed to the next
     sync. Default off: every other caller keeps the append-is-flushed
     commit point. *)
  mutable group_commit : bool;
  mutable unsynced : int;
}

let snapshot_path dir = Filename.concat dir "node.snap"

let wal_path dir = Filename.concat dir "node.wal"

(* Journal entries. *)

let encode_update item op =
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.int w 0;
      Codec.Writer.string w item;
      Wire.encode_operation w op;
      Codec.Writer.contents w)

let encode_reply ~source reply =
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.int w 1;
      Codec.Writer.int w source;
      Wire.encode_propagation_reply w reply;
      Codec.Writer.contents w)

let encode_oob ~source reply =
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.int w 2;
      Codec.Writer.int w source;
      Wire.encode_oob_reply w reply;
      Codec.Writer.contents w)

let encode_push ~source (u : Message.push_update) =
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.int w 3;
      Codec.Writer.int w source;
      Codec.Writer.string w u.item;
      Codec.Writer.int w u.seq;
      Wire.encode_vv w u.ivv;
      Codec.Writer.string w u.value;
      Codec.Writer.contents w)

let encode_membership op =
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.int w 4;
      (match op with
      | Extend { name } ->
        Codec.Writer.int w 0;
        Codec.Writer.int w name
      | Retire { slot; name } ->
        Codec.Writer.int w 1;
        Codec.Writer.int w slot;
        Codec.Writer.int w name);
      Codec.Writer.contents w)

let apply_journal_record node_ref membership record =
  let node = !node_ref in
  let r = Codec.Reader.create record in
  (match Codec.Reader.int r with
  | 0 ->
    let item = Codec.Reader.string r in
    let op = Wire.decode_operation r in
    Node.update node item op
  | 1 ->
    let source = Codec.Reader.int r in
    let reply = Wire.decode_propagation_reply r in
    let (_ : Node.accept_result) = Node.accept_propagation node ~source reply in
    ()
  | 2 ->
    let source = Codec.Reader.int r in
    let reply = Wire.decode_oob_reply r in
    let (_ : Node.oob_result) = Node.accept_out_of_bound node ~source reply in
    ()
  | 3 ->
    let source = Codec.Reader.int r in
    let item = Codec.Reader.string r in
    let seq = Codec.Reader.int r in
    let ivv = Wire.decode_vv r in
    let value = Codec.Reader.string r in
    let (_ : [ `Applied | `Stale ]) =
      Node.apply_push node ~source { Message.item; seq; ivv; value }
    in
    ()
  | 4 ->
    (* Membership reshape: mechanical vector surgery, replayed exactly
       like any other committed record. The journal append was the
       commit point, so recovery lands on the post-reshape geometry and
       every later journaled reply decodes against the right dimension. *)
    (match Codec.Reader.int r with
    | 0 ->
      let name = Codec.Reader.int r in
      node_ref := Node.extend_dimension node;
      membership := Extend { name } :: !membership
    | 1 ->
      let slot = Codec.Reader.int r in
      let name = Codec.Reader.int r in
      node_ref := Node.retire_component node ~slot;
      membership := Retire { slot; name } :: !membership
    | op -> raise (Codec.Reader.Corrupt (Printf.sprintf "unknown membership op %d" op)))
  | tag -> raise (Codec.Reader.Corrupt (Printf.sprintf "unknown journal tag %d" tag)));
  Codec.Reader.expect_end r

let open_or_create ?policy ?mode ?(shards = 1) ~dir ~id ~n () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let from_checkpoint =
    if Sys.file_exists (snapshot_path dir) then
      Snapshot.load ?policy ?mode ~path:(snapshot_path dir) ()
    else Ok (Node.create ?policy ?mode ~shards ~id ~n ())
  in
  match from_checkpoint with
  | Error _ as e -> e
  | Ok node ->
    if Node.id node <> id || Node.dimension node <> n then
      Error
        (Printf.sprintf "checkpoint is for node %d/%d, requested %d/%d" (Node.id node)
           (Node.dimension node) id n)
    else if Node.shards node <> shards then
      Error
        (Printf.sprintf "checkpoint has %d shards, requested %d" (Node.shards node)
           shards)
    else (
      let node_ref = ref node in
      let membership = ref [] in
      match
        Wal.replay ~path:(wal_path dir)
          ~f:(apply_journal_record node_ref membership)
      with
      | Error _ as e -> e
      | exception Codec.Reader.Corrupt msg -> Error ("corrupt journal record: " ^ msg)
      | Ok replay_result ->
        let wal = Wal.open_writer ~path:(wal_path dir) in
        Ok
          ( {
              node = !node_ref;
              dir;
              wal;
              journal_records = replay_result.records;
              membership = List.rev !membership;
              group_commit = false;
              unsynced = 0;
            },
            replay_result ))

let node t = t.node

let journal t record =
  Wal.append ~flush:(not t.group_commit) t.wal record;
  if t.group_commit then t.unsynced <- t.unsynced + 1;
  t.journal_records <- t.journal_records + 1

(* Sync releases the current group-commit batch; under group commit the
   sync — not the append — is the commit point, and a crash between
   them recovers to the state before every unsynced record, exactly as
   if those sessions never ran (each journal record is one complete
   session effect, appended in completion order, so the synced prefix
   is always a valid history). *)
let sync t =
  if t.unsynced > 0 then begin
    Wal.sync t.wal;
    t.unsynced <- 0
  end

let unsynced_records t = t.unsynced

let set_group_commit t enabled =
  if (not enabled) && t.group_commit then sync t;
  t.group_commit <- enabled

let update t item op =
  journal t (encode_update item op);
  Node.update t.node item op

let pull_from t ~source =
  let request = Node.propagation_request t.node in
  let reply = Node.handle_propagation_request source request in
  match reply with
  | Message.You_are_current -> Node.Already_current
  | Message.Propagate _ | Message.Propagate_sharded _ ->
    (* Journal before applying: the WAL append is the commit point.
       A crash before it (durable.journal.before, or a torn append via
       wal.append.partial) loses nothing — recovery sees the pre-session
       state and a later anti-entropy round re-pulls. A crash after it
       (durable.apply.before, or any accept.* point inside
       accept_propagation) re-applies the journaled reply on recovery,
       yielding exactly the post-session state. Never torn. *)
    Fault.hit "durable.journal.before";
    journal t (encode_reply ~source:(Node.id source) reply);
    Fault.hit "durable.apply.before";
    Node.Pulled (Node.accept_propagation t.node ~source:(Node.id source) reply)

let accept_reply t ~source reply =
  match reply with
  | Message.You_are_current -> ()
  | Message.Propagate _ | Message.Propagate_sharded _ ->
    (* Same commit discipline as [pull_from], for replies that arrived
       as decoded frames from a remote transport rather than from an
       in-process source node. *)
    Fault.hit "durable.journal.before";
    journal t (encode_reply ~source reply);
    Fault.hit "durable.apply.before";
    let (_ : Node.accept_result) = Node.accept_propagation t.node ~source reply in
    ()

let apply_push t ~source update =
  (* Same journal-before-apply discipline as pull_from. The push itself
     is volatile, but once applied it becomes part of this node's state
     and later journaled AE replies assume it — so the application must
     be redoable from the WAL or recovery would replay those replies
     against a state missing the pushed update (breaking the per-origin
     prefix property). Journaling a stale push is harmless: replay
     re-judges freshness and drops it again. *)
  Fault.hit "durable.journal.before";
  journal t (encode_push ~source update);
  Fault.hit "durable.apply.before";
  Node.apply_push t.node ~source update

let fetch_out_of_bound_from t ~source item =
  let reply = Node.serve_out_of_bound source { Message.item } in
  journal t (encode_oob ~source:(Node.id source) reply);
  Node.accept_out_of_bound t.node ~source:(Node.id source) reply

let extend_dimension t ~name =
  (* Journal-before-apply, same commit discipline as pull_from: a crash
     before the append loses the reshape entirely (the membership layer
     re-issues it), a crash after it replays the reshape on recovery. *)
  Fault.hit "durable.journal.before";
  journal t (encode_membership (Extend { name }));
  Fault.hit "durable.apply.before";
  t.node <- Node.extend_dimension t.node;
  t.membership <- t.membership @ [ Extend { name } ]

let retire_component t ~slot ~name =
  Fault.hit "durable.journal.before";
  journal t (encode_membership (Retire { slot; name }));
  Fault.hit "durable.apply.before";
  t.node <- Node.retire_component t.node ~slot;
  t.membership <- t.membership @ [ Retire { slot; name } ]

let membership_log t = t.membership

let checkpoint t =
  sync t;
  Snapshot.save t.node ~path:(snapshot_path t.dir);
  Wal.close_writer t.wal;
  Wal.reset ~path:(wal_path t.dir);
  t.wal <- Wal.open_writer ~path:(wal_path t.dir);
  t.journal_records <- 0;
  t.membership <- []

let journal_records t = t.journal_records

let close t = Wal.close_writer t.wal

module Node = Edb_core.Node

(* Bump when the layout changes; decode refuses newer/older layouts
   explicitly rather than misparsing them. v2 wraps the payload in an
   explicit Adler-32 so corruption of the node state is reported as
   such, distinctly from damage to the file framing. v3 adds a shard
   count and per-shard sections; an unsharded node still writes v2, so
   its snapshots stay byte-identical to the pre-sharding format and
   old snapshots keep loading as single-shard nodes. *)
let version_flat = 2

let version_sharded = 3

let magic = "EDBSNAP1"

let encode_operation = Wire.encode_operation

let decode_operation = Wire.decode_operation

let encode_item w (item : Node.State.item) =
  Codec.Writer.string w item.name;
  Codec.Writer.string w item.value;
  Codec.Writer.array w Codec.Writer.int item.ivv

let decode_item r =
  let name = Codec.Reader.string r in
  let value = Codec.Reader.string r in
  let ivv = Codec.Reader.array r Codec.Reader.int in
  { Node.State.name; value; ivv }

let encode_log_record w (item, seq) =
  Codec.Writer.string w item;
  Codec.Writer.int w seq

let decode_log_record r =
  let item = Codec.Reader.string r in
  let seq = Codec.Reader.int r in
  (item, seq)

let encode_aux_record w (record : Node.State.aux_record) =
  Codec.Writer.string w record.item;
  Codec.Writer.array w Codec.Writer.int record.ivv;
  encode_operation w record.op

let decode_aux_record r =
  let item = Codec.Reader.string r in
  let ivv = Codec.Reader.array r Codec.Reader.int in
  let op = decode_operation r in
  { Node.State.item; ivv; op }

let encode_shard w (shard : Node.State.shard) =
  Codec.Writer.list w encode_item shard.items;
  Codec.Writer.array w Codec.Writer.int shard.dbvv;
  Codec.Writer.array w
    (fun w records -> Codec.Writer.list w encode_log_record records)
    shard.logs;
  Codec.Writer.list w encode_item shard.aux_items;
  Codec.Writer.list w encode_aux_record shard.aux_log

let decode_shard ~n r =
  let items = Codec.Reader.list r decode_item in
  let dbvv = Codec.Reader.array r Codec.Reader.int in
  let logs = Codec.Reader.array r (fun r -> Codec.Reader.list r decode_log_record) in
  let aux_items = Codec.Reader.list r decode_item in
  let aux_log = Codec.Reader.list r decode_aux_record in
  if Array.length dbvv <> n || Array.length logs <> n then
    raise (Codec.Reader.Corrupt "shard vector dimension mismatch");
  { Node.State.items; dbvv; logs; aux_items; aux_log }

let encode_payload (state : Node.State.t) =
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.int w state.Node.State.id;
      Codec.Writer.int w state.n;
      if Array.length state.shards = 1 then
        (* The flat v2 body: exactly the pre-sharding byte stream. *)
        encode_shard w state.shards.(0)
      else begin
        Codec.Writer.int w (Array.length state.shards);
        Array.iter (encode_shard w) state.shards
      end;
      Codec.Writer.contents w)

let encode node =
  let state = Node.export_state node in
  let payload = encode_payload state in
  let format_version =
    if Array.length state.Node.State.shards = 1 then version_flat
    else version_sharded
  in
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.string w magic;
      Codec.Writer.int w format_version;
      (* Explicit payload checksum on top of the codec's whole-blob
         trailer: a flipped bit in the node state is reported as state
         corruption rather than a generic framing error, and the
         payload stays verifiable even if re-framed. *)
      Codec.Writer.int w (Wal.adler32 payload);
      Codec.Writer.string w payload;
      Codec.Writer.contents w)

let decode_payload ?policy ?conflict_handler ?mode ~version payload =
  let r = Codec.Reader.create payload in
  let id = Codec.Reader.int r in
  let n = Codec.Reader.int r in
  let shards =
    if version = version_flat then [| decode_shard ~n r |]
    else begin
      let count = Codec.Reader.int r in
      if count < 1 then raise (Codec.Reader.Corrupt "bad shard count");
      Array.init count (fun _ -> decode_shard ~n r)
    end
  in
  Codec.Reader.expect_end r;
  Node.import_state ?policy ?conflict_handler ?mode { Node.State.id; n; shards }

let decode ?policy ?conflict_handler ?mode blob =
  match
    let r = Codec.Reader.create blob in
    let file_magic = Codec.Reader.string r in
    if not (String.equal file_magic magic) then
      raise (Codec.Reader.Corrupt (Printf.sprintf "bad magic %S" file_magic));
    let version = Codec.Reader.int r in
    if version <> version_flat && version <> version_sharded then
      raise
        (Codec.Reader.Corrupt
           (Printf.sprintf "unsupported snapshot version %d (expected %d or %d)"
              version version_flat version_sharded));
    let stored = Codec.Reader.int r in
    let payload = Codec.Reader.string r in
    Codec.Reader.expect_end r;
    let computed = Wal.adler32 payload in
    if stored <> computed then
      raise
        (Codec.Reader.Corrupt
           (Printf.sprintf "payload checksum mismatch (stored %#x, computed %#x)"
              stored computed));
    decode_payload ?policy ?conflict_handler ?mode ~version payload
  with
  | node -> Ok node
  | exception Codec.Reader.Corrupt msg -> Error ("corrupt snapshot: " ^ msg)
  | exception Invalid_argument msg -> Error ("inconsistent snapshot: " ^ msg)

let save node ~path =
  let blob = encode node in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc blob;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let load ?policy ?conflict_handler ?mode ~path () =
  match open_in_bin path with
  | exception Sys_error msg -> Error ("cannot open snapshot: " ^ msg)
  | ic ->
    let read () =
      let len = in_channel_length ic in
      really_input_string ic len
    in
    (match read () with
    | blob ->
      close_in ic;
      decode ?policy ?conflict_handler ?mode blob
    | exception e ->
      close_in_noerr ic;
      Error ("cannot read snapshot: " ^ Printexc.to_string e))

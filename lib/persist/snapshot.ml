module Node = Edb_core.Node

(* Bump when the layout changes; decode refuses newer/older layouts
   explicitly rather than misparsing them. v2 wraps the payload in an
   explicit Adler-32 so corruption of the node state is reported as
   such, distinctly from damage to the file framing. *)
let format_version = 2

let magic = "EDBSNAP1"

let encode_operation = Wire.encode_operation

let decode_operation = Wire.decode_operation

let encode_item w (item : Node.State.item) =
  Codec.Writer.string w item.name;
  Codec.Writer.string w item.value;
  Codec.Writer.array w Codec.Writer.int item.ivv

let decode_item r =
  let name = Codec.Reader.string r in
  let value = Codec.Reader.string r in
  let ivv = Codec.Reader.array r Codec.Reader.int in
  { Node.State.name; value; ivv }

let encode_log_record w (item, seq) =
  Codec.Writer.string w item;
  Codec.Writer.int w seq

let decode_log_record r =
  let item = Codec.Reader.string r in
  let seq = Codec.Reader.int r in
  (item, seq)

let encode_aux_record w (record : Node.State.aux_record) =
  Codec.Writer.string w record.item;
  Codec.Writer.array w Codec.Writer.int record.ivv;
  encode_operation w record.op

let decode_aux_record r =
  let item = Codec.Reader.string r in
  let ivv = Codec.Reader.array r Codec.Reader.int in
  let op = decode_operation r in
  { Node.State.item; ivv; op }

let encode_payload state =
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.int w state.Node.State.id;
      Codec.Writer.int w state.n;
      Codec.Writer.list w encode_item state.items;
      Codec.Writer.array w Codec.Writer.int state.dbvv;
      Codec.Writer.array w
        (fun w records -> Codec.Writer.list w encode_log_record records)
        state.logs;
      Codec.Writer.list w encode_item state.aux_items;
      Codec.Writer.list w encode_aux_record state.aux_log;
      Codec.Writer.contents w)

let encode node =
  let payload = encode_payload (Node.export_state node) in
  Codec.Writer.with_scratch (fun w ->
      Codec.Writer.string w magic;
      Codec.Writer.int w format_version;
      (* Explicit payload checksum on top of the codec's whole-blob
         trailer: a flipped bit in the node state is reported as state
         corruption rather than a generic framing error, and the
         payload stays verifiable even if re-framed. *)
      Codec.Writer.int w (Wal.adler32 payload);
      Codec.Writer.string w payload;
      Codec.Writer.contents w)

let decode_payload ?policy ?conflict_handler ?mode payload =
  let r = Codec.Reader.create payload in
  let id = Codec.Reader.int r in
  let n = Codec.Reader.int r in
  let items = Codec.Reader.list r decode_item in
  let dbvv = Codec.Reader.array r Codec.Reader.int in
  let logs = Codec.Reader.array r (fun r -> Codec.Reader.list r decode_log_record) in
  let aux_items = Codec.Reader.list r decode_item in
  let aux_log = Codec.Reader.list r decode_aux_record in
  Codec.Reader.expect_end r;
  Node.import_state ?policy ?conflict_handler ?mode
    { Node.State.id; n; items; dbvv; logs; aux_items; aux_log }

let decode ?policy ?conflict_handler ?mode blob =
  match
    let r = Codec.Reader.create blob in
    let file_magic = Codec.Reader.string r in
    if not (String.equal file_magic magic) then
      raise (Codec.Reader.Corrupt (Printf.sprintf "bad magic %S" file_magic));
    let version = Codec.Reader.int r in
    if version <> format_version then
      raise
        (Codec.Reader.Corrupt
           (Printf.sprintf "unsupported snapshot version %d (expected %d)" version
              format_version));
    let stored = Codec.Reader.int r in
    let payload = Codec.Reader.string r in
    Codec.Reader.expect_end r;
    let computed = Wal.adler32 payload in
    if stored <> computed then
      raise
        (Codec.Reader.Corrupt
           (Printf.sprintf "payload checksum mismatch (stored %#x, computed %#x)"
              stored computed));
    decode_payload ?policy ?conflict_handler ?mode payload
  with
  | node -> Ok node
  | exception Codec.Reader.Corrupt msg -> Error ("corrupt snapshot: " ^ msg)
  | exception Invalid_argument msg -> Error ("inconsistent snapshot: " ^ msg)

let save node ~path =
  let blob = encode node in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc blob;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let load ?policy ?conflict_handler ?mode ~path () =
  match open_in_bin path with
  | exception Sys_error msg -> Error ("cannot open snapshot: " ^ msg)
  | ic ->
    let read () =
      let len = in_channel_length ic in
      really_input_string ic len
    in
    (match read () with
    | blob ->
      close_in ic;
      decode ?policy ?conflict_handler ?mode blob
    | exception e ->
      close_in_noerr ic;
      Error ("cannot read snapshot: " ^ Printexc.to_string e))

(* Adler-32 (RFC 1950): simple, fast, and good enough to catch the
   truncation/corruption failure modes a snapshot file meets. *)
let adler32 data =
  let modulus = 65_521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod modulus;
      b := (!b + !a) mod modulus)
    data;
  (!b lsl 16) lor !a

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 4_096

  (* One reusable scratch buffer per domain, so encode-heavy paths
     (snapshots, manifests, WAL batches) stop allocating a fresh 4KB+
     buffer per call. Domain-local storage keeps the parallel
     anti-entropy fan-out race-free; the in-use flag makes nested
     [with_scratch] calls fall back to a fresh buffer instead of
     clobbering the outer one. *)
  let scratch_key =
    Domain.DLS.new_key (fun () -> (Buffer.create 65_536, ref false))

  let with_scratch f =
    let buf, in_use = Domain.DLS.get scratch_key in
    if !in_use then f (create ())
    else begin
      in_use := true;
      Buffer.clear buf;
      Fun.protect ~finally:(fun () -> in_use := false) (fun () -> f buf)
    end

  let int t v = Buffer.add_int64_le t (Int64.of_int v)

  let string t s =
    int t (String.length s);
    Buffer.add_string t s

  let bool t v = Buffer.add_char t (if v then '\001' else '\000')

  let list t encode xs =
    int t (List.length xs);
    List.iter (encode t) xs

  let array t encode xs =
    int t (Array.length xs);
    Array.iter (encode t) xs

  let contents t =
    let payload = Buffer.contents t in
    let trailer = Bytes.create 4 in
    Bytes.set_int32_le trailer 0 (Int32.of_int (adler32 payload));
    payload ^ Bytes.to_string trailer
end

module Reader = struct
  type t = { data : string; limit : int; mutable pos : int }

  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

  let create data =
    let len = String.length data in
    if len < 4 then corrupt "snapshot shorter than its checksum trailer";
    let payload_len = len - 4 in
    let payload = String.sub data 0 payload_len in
    let stored =
      Int32.to_int (String.get_int32_le data payload_len) land 0xFFFFFFFF
    in
    let actual = adler32 payload in
    if stored <> actual then
      corrupt "checksum mismatch: stored %08x, computed %08x" stored actual;
    { data; limit = payload_len; pos = 0 }

  let need t n =
    if t.pos + n > t.limit then
      corrupt "truncated payload: need %d bytes at offset %d, have %d" n t.pos
        (t.limit - t.pos)

  let int t =
    need t 8;
    let v = Int64.to_int (String.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let string t =
    let len = int t in
    if len < 0 then corrupt "negative string length";
    need t len;
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let bool t =
    need t 1;
    let c = t.data.[t.pos] in
    t.pos <- t.pos + 1;
    match c with
    | '\000' -> false
    | '\001' -> true
    | other -> corrupt "invalid boolean byte %C" other

  let list t decode =
    let len = int t in
    if len < 0 then corrupt "negative list length";
    List.init len (fun _ -> decode t)

  let array t decode =
    let len = int t in
    if len < 0 then corrupt "negative array length";
    Array.init len (fun _ -> decode t)

  let expect_end t =
    if t.pos <> t.limit then
      corrupt "trailing garbage: %d unread payload bytes" (t.limit - t.pos)
end

(* Adler-32 (RFC 1950): simple, fast, and good enough to catch the
   truncation/corruption failure modes a snapshot file meets. *)
let adler32 data =
  let modulus = 65_521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod modulus;
      b := (!b + !a) mod modulus)
    data;
  (!b lsl 16) lor !a

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 4_096

  (* One reusable scratch buffer per domain, so encode-heavy paths
     (snapshots, manifests, WAL batches) stop allocating a fresh 4KB+
     buffer per call. Domain-local storage keeps the parallel
     anti-entropy fan-out race-free; the in-use flag makes nested
     [with_scratch] calls fall back to a fresh buffer instead of
     clobbering the outer one. *)
  let scratch_key =
    Domain.DLS.new_key (fun () -> (Buffer.create 65_536, ref false))

  let with_scratch f =
    let buf, in_use = Domain.DLS.get scratch_key in
    if !in_use then f (create ())
    else begin
      in_use := true;
      Buffer.clear buf;
      Fun.protect ~finally:(fun () -> in_use := false) (fun () -> f buf)
    end

  let int t v = Buffer.add_int64_le t (Int64.of_int v)

  let string t s =
    int t (String.length s);
    Buffer.add_string t s

  let bool t v = Buffer.add_char t (if v then '\001' else '\000')

  let byte t v =
    if v < 0 || v > 0xFF then invalid_arg "Codec.Writer.byte: out of range";
    Buffer.add_char t (Char.unsafe_chr v)

  (* LEB128. [lsr] is a logical shift, so a negative int (top bit set in
     OCaml's 63-bit representation) terminates after at most 9 groups —
     it round-trips as the same 63-bit pattern, it just costs 9 bytes.
     Sane wire fields are non-negative and small, which is the point. *)
  let rec varint t v =
    if v land lnot 0x7F = 0 then Buffer.add_char t (Char.unsafe_chr v)
    else begin
      Buffer.add_char t (Char.unsafe_chr (v land 0x7F lor 0x80));
      varint t (v lsr 7)
    end

  (* Zig-zag for the few genuinely signed fields: small magnitudes of
     either sign stay short. *)
  let svarint t v = varint t ((v lsl 1) lxor (v asr 62))

  let vstring t s =
    varint t (String.length s);
    Buffer.add_string t s

  let list t encode xs =
    int t (List.length xs);
    List.iter (encode t) xs

  let array t encode xs =
    int t (Array.length xs);
    Array.iter (encode t) xs

  let contents t =
    let payload = Buffer.contents t in
    let trailer = Bytes.create 4 in
    Bytes.set_int32_le trailer 0 (Int32.of_int (adler32 payload));
    payload ^ Bytes.to_string trailer
end

module Reader = struct
  type t = { data : string; limit : int; mutable pos : int }

  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun msg -> raise (Corrupt msg)) fmt

  let create data =
    let len = String.length data in
    if len < 4 then corrupt "snapshot shorter than its checksum trailer";
    let payload_len = len - 4 in
    let payload = String.sub data 0 payload_len in
    let stored =
      Int32.to_int (String.get_int32_le data payload_len) land 0xFFFFFFFF
    in
    let actual = adler32 payload in
    if stored <> actual then
      corrupt "checksum mismatch: stored %08x, computed %08x" stored actual;
    { data; limit = payload_len; pos = 0 }

  (* [t.limit - t.pos] cannot overflow, so comparing against it (rather
     than computing [t.pos + n], which can wrap for a hostile length)
     keeps a forged 2^62-byte claim from slipping past the bound. *)
  let need t n =
    if n < 0 || n > t.limit - t.pos then
      corrupt "truncated payload: need %d bytes at offset %d, have %d" n t.pos
        (t.limit - t.pos)

  let int t =
    need t 8;
    let v = Int64.to_int (String.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let string t =
    let len = int t in
    if len < 0 then corrupt "negative string length";
    need t len;
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let bool t =
    need t 1;
    let c = t.data.[t.pos] in
    t.pos <- t.pos + 1;
    match c with
    | '\000' -> false
    | '\001' -> true
    | other -> corrupt "invalid boolean byte %C" other

  let bounded_count t len what =
    if len < 0 then corrupt "negative %s length" what;
    (* Every element of every format encodes to at least one byte, so a
       count exceeding the remaining payload is forged — reject it here
       instead of letting [List.init]/[Array.init] attempt a giant
       allocation before the per-element reads run out of bytes. *)
    if len > t.limit - t.pos then
      corrupt "%s length %d exceeds %d remaining payload bytes" what len
        (t.limit - t.pos)

  let list t decode =
    let len = int t in
    bounded_count t len "list";
    List.init len (fun _ -> decode t)

  let array t decode =
    let len = int t in
    bounded_count t len "array";
    Array.init len (fun _ -> decode t)

  let byte t =
    need t 1;
    let c = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    c

  let varint t =
    let rec loop shift acc =
      if shift > 56 then corrupt "varint longer than 9 bytes"
      else begin
        need t 1;
        let b = Char.code t.data.[t.pos] in
        t.pos <- t.pos + 1;
        let acc = acc lor ((b land 0x7F) lsl shift) in
        if b land 0x80 = 0 then acc else loop (shift + 7) acc
      end
    in
    loop 0 0

  let svarint t =
    let u = varint t in
    (u lsr 1) lxor (- (u land 1))

  let vstring t =
    let len = varint t in
    need t len;
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let remaining t = t.limit - t.pos

  let expect_end t =
    if t.pos <> t.limit then
      corrupt "trailing garbage: %d unread payload bytes" (t.limit - t.pos)
end

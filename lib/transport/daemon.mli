(** One protocol node as a long-running process: a
    {!Edb_persist.Durable_node} (WAL + checkpoints) served over a
    {!Socket_transport} select loop — the `edb_cli serve` engine.

    The daemon is both protocol sides at once, and nothing in its loop
    blocks. Passively it answers requests (reply or nak) and applies
    pushes, journaling before applying. Actively each anti-entropy
    tick tops a table of per-peer initiator sessions up to
    [max_sessions] distinct random peers — every in-flight session is
    just another fd in the select set, its reply deadline, retries and
    abandonment handled as timers ({!Transport.Flow} arithmetic,
    {!Transport.Charge} counters). Every connection is non-blocking
    with a per-connection output buffer (writable-fd interest,
    partial-write resumption), so a slow peer never stops this node
    from serving; and the WAL group-commits once per loop turn — no
    buffered reply is released to the wire before the batch holding
    its commit record is durable. An optional push channel flushes on
    its own cadence over persistent per-peer streams, fire-and-forget.

    Control clients (the {!Harness}, `edb_cli cluster`) speak
    {!Control} records over the same listening socket. *)

module Config : sig
  type t = {
    id : int;
    n : int;
    dir : string;  (** Durable state directory (created if missing). *)
    listen : Socket_transport.addr;
    peers : (int * Socket_transport.addr) list;
    ae_period : float;  (** Seconds between anti-entropy rounds. *)
    retry : Transport.retry_policy;
    push : Edb_push.Channel.config option;
    seed : int;  (** Peer choice and backoff jitter PRNG seed. *)
    checkpoint_every : int;
        (** Checkpoint when the journal reaches this many records;
            [0] disables auto-checkpointing. *)
    max_runtime : float option;
        (** Self-terminate after this many seconds — the timeout
            guard for scripted runs. *)
    max_sessions : int;
        (** Concurrent initiator sessions the anti-entropy timer keeps
            in flight (clamped to [n - 1] live peers; at least 1). *)
  }

  val make :
    ?ae_period:float ->
    ?retry:Transport.retry_policy ->
    ?push:Edb_push.Channel.config ->
    ?seed:int ->
    ?checkpoint_every:int ->
    ?max_runtime:float ->
    ?max_sessions:int ->
    id:int ->
    n:int ->
    dir:string ->
    listen:Socket_transport.addr ->
    peers:(int * Socket_transport.addr) list ->
    unit ->
    t
  (** Defaults: 50 ms anti-entropy, the default retry policy tightened
      to a 0.5 s per-attempt timeout, no push, no auto-checkpoint, no
      runtime bound, 4 concurrent sessions. *)
end

(** The client-facing control protocol: one {!Edb_persist.Codec}
    envelope per record, behind the ['C'] stream tag. *)
module Control : sig
  type request =
    | Ping
    | Update of { item : string; op : Edb_store.Operation.t }
    | Read of { item : string }
    | Export  (** Answered with a {!Edb_persist.Snapshot} blob. *)
    | Counters_req
    | Checkpoint
    | Quit  (** Acknowledged, then the daemon shuts down cleanly. *)

  type reply =
    | Ack
    | Value of string option
    | State of string
    | Stats of (string * int) list
    | Failed of string

  val encode_request : request -> string

  val decode_request : string -> request
  (** Raises {!Edb_persist.Codec.Reader.Corrupt}. *)

  val encode_reply : reply -> string

  val decode_reply : string -> reply
  (** Raises {!Edb_persist.Codec.Reader.Corrupt}. *)
end

type t

val create : Config.t -> (t, string) result
(** Open (or recover) the durable node and bind the listening socket.
    Recovery replays the WAL over the latest checkpoint, so a daemon
    restarted after [kill -9] resumes exactly where the journal ends. *)

val node : t -> Edb_core.Node.t

val listen_addr : t -> Socket_transport.addr option

val step : t -> unit
(** One select-loop iteration: fire due timers (anti-entropy dial,
    session deadline or backoff, push flush, auto-checkpoint), then
    wait briefly for readiness and service every readable
    connection. *)

val shutdown : t -> unit

val serve : Config.t -> (unit, string) result
(** [create], then {!step} until a [Quit] arrives (or [max_runtime]
    passes), then {!shutdown} — ignoring [SIGPIPE] for the process, as
    any socket writer must. *)

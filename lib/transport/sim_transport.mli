(** The in-memory transport: {!Transport.S} without an operating
    system.

    Two distinct consumers:

    - The simulation engine delivers through {!hop}, which owns the
      fault draw order ({e blocked, lost, delay, duplicated, delay})
      that replayed explorer schedules depend on — the engine supplies
      its own network model and PRNG streams as closures, keeping this
      library free of simulation dependencies.

    - Tests drive the shared session layer ({!Session_client}) over
      endpoint objects: a {!net} maps node ids to synchronous
      handlers, a send is served on the spot, and {!set_drop} injects
      deterministic record loss so the retry/backoff machinery runs
      the same code path it runs over sockets. *)

val hop :
  blocked:(unit -> bool) ->
  lost:(unit -> bool) ->
  delay:(unit -> float) ->
  duplicated:(unit -> bool) ->
  deliver:(float -> unit) ->
  unit
(** One directed hop: nothing is drawn for a blocked pair; otherwise
    loss is drawn, then a delivery delay, then duplication, then the
    duplicate's delay. [deliver] is called once per copy with its
    delay. *)

type handler = src:int -> string -> string option
(** A registered endpoint's synchronous service function: given the
    sender's id and a stream record, optionally produce the record to
    queue back on the sender's connection. *)

type net

val create_net : unit -> net

val set_drop : net -> (unit -> bool) -> unit
(** Install the per-record drop predicate (default: never). Consulted
    once per sent record and once per produced reply, so either half
    of a session can be lost. *)

val register : net -> id:int -> handler -> unit

val unregister : net -> id:int -> unit
(** Subsequent sends to [id] fail — a crashed peer. *)

val serve_node : net -> Edb_core.Node.t -> unit
(** Register [node] under its own id with the standard passive side:
    {!Transport.serve_frame} behind {!Transport.Record} tagging. *)

type t

val endpoint : net -> id:int -> t

include Transport.S with type t := t

module Node = Edb_core.Node
module Counters = Edb_metrics.Counters
module Operation = Edb_store.Operation
module Item = Edb_store.Item
module Vv = Edb_vv.Version_vector
module Snapshot = Edb_persist.Snapshot
module Codec = Edb_persist.Codec
module T = Socket_transport

(* The multi-process harness: boot an N-daemon cluster (one [fork]ed
   `serve` process per node), drive it over the control protocol, kill
   and restart daemons mid-run, and decide convergence from exported
   snapshots. It deliberately lives below [lib/check]: the invariant
   battery is injected by the caller ([await_converged ~invariant]), so
   the dependency arrow keeps pointing check -> transport. *)

type kind = [ `Unix | `Tcp ]

type proc = {
  p_id : int;
  p_dir : string;
  p_addr : T.addr;
  mutable pid : int option;
}

type t = {
  n : int;
  procs : proc array;
  make_config : int -> Daemon.Config.t;
  client : T.t;
  controls : (int, T.conn) Hashtbl.t;
  control_timeout : float;
}

(* Kernel-assigned free TCP ports: bind port 0, read the choice back,
   release. A tiny window exists before the daemon rebinds (with
   SO_REUSEADDR); fine for a local test harness. *)
let free_tcp_ports count =
  let fds =
    List.init count (fun _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        fd)
  in
  let ports =
    List.map
      (fun fd ->
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, port) -> port
        | _ -> assert false)
      fds
  in
  List.iter Unix.close fds;
  ports

let spawn t i =
  let proc = t.procs.(i) in
  assert (proc.pid = None);
  let config = t.make_config i in
  (* Flush before forking so buffered output is not emitted twice. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (let code =
       match Daemon.serve config with
       | Ok () -> 0
       | Error msg ->
         Printf.eprintf "daemon %d: %s\n%!" i msg;
         1
       | exception e ->
         Printf.eprintf "daemon %d: %s\n%!" i (Printexc.to_string e);
         2
     in
     Unix._exit code)
  | pid -> proc.pid <- Some pid

let start ?(kind = `Unix) ?(ae_period = 0.03) ?retry ?push ?(seed = 1)
    ?(checkpoint_every = 0) ?(max_runtime = 120.0) ?(control_timeout = 5.0) ?max_sessions
    ~dir ~n () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addrs =
    match kind with
    | `Unix ->
      Array.init n (fun i -> T.Unix_path (Filename.concat dir (Printf.sprintf "n%d.sock" i)))
    | `Tcp ->
      let ports = Array.of_list (free_tcp_ports n) in
      Array.init n (fun i -> T.Tcp { host = "127.0.0.1"; port = ports.(i) })
  in
  let all_peers = Array.to_list (Array.mapi (fun i addr -> (i, addr)) addrs) in
  let procs =
    Array.init n (fun i ->
        {
          p_id = i;
          p_dir = Filename.concat dir (Printf.sprintf "node%d" i);
          p_addr = addrs.(i);
          pid = None;
        })
  in
  let make_config i =
    Daemon.Config.make ~ae_period ?retry ?push ~seed:(seed + (1000 * i)) ~checkpoint_every
      ~max_runtime ?max_sessions ~id:i ~n ~dir:procs.(i).p_dir ~listen:addrs.(i)
      ~peers:(List.filter (fun (j, _) -> j <> i) all_peers)
      ()
  in
  match T.create ~id:n ~peers:all_peers () with
  | Error msg -> failwith ("harness client endpoint: " ^ msg)
  | Ok client ->
    let t =
      { n; procs; make_config; client; controls = Hashtbl.create 8; control_timeout }
    in
    for i = 0 to n - 1 do
      spawn t i
    done;
    t

let running t ~node = t.procs.(node).pid <> None

let drop_control t ~node =
  match Hashtbl.find_opt t.controls node with
  | Some conn ->
    T.close_conn conn;
    Hashtbl.remove t.controls node
  | None -> ()

(* Dial the node's control connection, retrying while its daemon is
   still binding the listening socket. *)
let control t ~node =
  match Hashtbl.find_opt t.controls node with
  | Some conn -> Ok conn
  | None ->
    let deadline = Unix.gettimeofday () +. t.control_timeout in
    let rec dial () =
      match T.connect t.client ~peer:node with
      | Ok conn ->
        Hashtbl.replace t.controls node conn;
        Ok conn
      | Error e ->
        if Unix.gettimeofday () >= deadline then
          Error (Printf.sprintf "node %d control: %s" node e)
        else begin
          Unix.sleepf 0.01;
          dial ()
        end
    in
    dial ()

let rpc_once t conn req =
  match T.send conn (Transport.Record.control (Daemon.Control.encode_request req)) with
  | Error _ as e -> e
  | Ok () -> (
    match T.recv ~timeout:t.control_timeout conn with
    | Error _ as e -> e
    | Ok record -> (
      match Transport.Record.classify record with
      | Ok (Transport.Record.Control payload) -> (
        try Ok (Daemon.Control.decode_reply payload)
        with Codec.Reader.Corrupt msg -> Error ("corrupt control reply: " ^ msg))
      | Ok (Transport.Record.Frame _) -> Error "unexpected frame on control connection"
      | Error _ as e -> e))

let request t ~node req =
  match control t ~node with
  | Error _ as e -> e
  | Ok conn -> (
    match rpc_once t conn req with
    | Ok _ as ok -> ok
    | Error e -> (
      (* The cached connection may be stale (daemon restarted since);
         one fresh dial decides whether the node is really gone. *)
      drop_control t ~node;
      match control t ~node with
      | Error _ -> Error e
      | Ok conn -> (
        match rpc_once t conn req with Ok _ as ok -> ok | Error _ -> Error e)))

let expect_ack = function
  | Ok Daemon.Control.Ack -> Ok ()
  | Ok (Daemon.Control.Failed msg) -> Error msg
  | Ok _ -> Error "unexpected control reply"
  | Error _ as e -> e

let update t ~node ~item op =
  expect_ack (request t ~node (Daemon.Control.Update { item; op }))

let read t ~node ~item =
  match request t ~node (Daemon.Control.Read { item }) with
  | Ok (Daemon.Control.Value v) -> Ok v
  | Ok (Daemon.Control.Failed msg) -> Error msg
  | Ok _ -> Error "unexpected control reply"
  | Error _ as e -> e

let export t ~node =
  match request t ~node Daemon.Control.Export with
  | Ok (Daemon.Control.State blob) -> Snapshot.decode blob
  | Ok (Daemon.Control.Failed msg) -> Error msg
  | Ok _ -> Error "unexpected control reply"
  | Error _ as e -> e

let counters_of t ~node =
  match request t ~node Daemon.Control.Counters_req with
  | Ok (Daemon.Control.Stats fields) -> Ok fields
  | Ok (Daemon.Control.Failed msg) -> Error msg
  | Ok _ -> Error "unexpected control reply"
  | Error _ as e -> e

let checkpoint t ~node = expect_ack (request t ~node Daemon.Control.Checkpoint)

let reap ?(timeout = 5.0) pid =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () >= deadline then begin
        Unix.kill pid Sys.sigkill;
        let (_ : int * Unix.process_status) = Unix.waitpid [] pid in
        ()
      end
      else begin
        Unix.sleepf 0.005;
        wait ()
      end
    | _, _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ()

let kill t ~node =
  match t.procs.(node).pid with
  | None -> ()
  | Some pid ->
    (* SIGKILL: no cleanup runs in the daemon — the WAL on disk is all
       restart gets, which is exactly what the crash-recovery tests
       want to exercise. *)
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
    reap pid;
    t.procs.(node).pid <- None;
    drop_control t ~node

let stop t ~node =
  match t.procs.(node).pid with
  | None -> ()
  | Some pid ->
    let (_ : (unit, string) result) = expect_ack (request t ~node Daemon.Control.Quit) in
    drop_control t ~node;
    reap pid;
    t.procs.(node).pid <- None

let restart t ~node =
  if t.procs.(node).pid = None then begin
    drop_control t ~node;
    spawn t node
  end

(* Snapshot-level convergence, the same judgement [Cluster.converged]
   makes in process: no auxiliary copies anywhere, equal DBVVs (per
   shard), and item-for-item equal stores — where an item missing on
   one node must be indistinguishable from never-written on the other
   (empty value, zero IVV). *)
let item_matches_missing (it : Item.t) =
  String.equal it.Item.value "" && Vv.sum it.Item.ivv = 0

let agree nodes =
  match nodes with
  | [] | [ _ ] -> true
  | reference :: rest ->
    let ref_dbvv = Node.dbvv_view reference in
    let shard_dbvvs_equal a b =
      let shards = Node.shards a in
      Node.shards b = shards
      &&
      let rec loop s =
        s >= shards
        || Vv.equal (Node.shard_dbvv_view a s) (Node.shard_dbvv_view b s) && loop (s + 1)
      in
      loop 0
    in
    List.for_all (fun n -> Node.aux_count n = 0) nodes
    && List.for_all
         (fun n -> Vv.equal (Node.dbvv_view n) ref_dbvv && shard_dbvvs_equal n reference)
         rest
    && begin
      let names = Hashtbl.create 64 in
      List.iter
        (fun n -> Node.iter_items (fun it -> Hashtbl.replace names it.Item.name ()) n)
        nodes;
      Hashtbl.fold
        (fun name () acc ->
          acc
          &&
          let ref_item = Node.find_item reference name in
          List.for_all
            (fun n ->
              match (ref_item, Node.find_item n name) with
              | None, None -> true
              | Some a, Some b -> String.equal a.Item.value b.Item.value && Vv.equal a.ivv b.ivv
              | Some a, None -> item_matches_missing a
              | None, Some b -> item_matches_missing b)
            rest)
        names true
    end

let export_all t =
  let rec loop i acc =
    if i < 0 then Ok acc
    else if not (running t ~node:i) then Error (Printf.sprintf "node %d is not running" i)
    else
      match export t ~node:i with
      | Ok node -> loop (i - 1) (node :: acc)
      | Error e -> Error (Printf.sprintf "node %d export: %s" i e)
  in
  loop (t.n - 1) []

let await_converged ?(deadline = 30.0) ?(poll = 0.02) ?invariant t =
  let started = Unix.gettimeofday () in
  let until = started +. deadline in
  let check_invariant nodes =
    match invariant with
    | None -> Ok ()
    | Some check ->
      List.fold_left
        (fun acc node ->
          match acc with
          | Error _ as e -> e
          | Ok () -> (
            match check node with
            | Ok () -> Ok ()
            | Error msg -> Error (Printf.sprintf "node %d invariant: %s" (Node.id node) msg)))
        (Ok ()) nodes
  in
  let rec loop last_err =
    if Unix.gettimeofday () >= until then
      Error
        (Printf.sprintf "not converged within %.1fs%s" deadline
           (match last_err with Some e -> " (" ^ e ^ ")" | None -> ""))
    else
      match export_all t with
      | Error e ->
        Unix.sleepf poll;
        loop (Some e)
      | Ok nodes -> (
        match check_invariant nodes with
        | Error e -> Error e (* invariants must hold on every sample *)
        | Ok () ->
          if agree nodes then Ok (Unix.gettimeofday () -. started)
          else begin
            Unix.sleepf poll;
            loop last_err
          end)
  in
  loop None

let shutdown t =
  for i = 0 to t.n - 1 do
    if running t ~node:i then stop t ~node:i
  done;
  Hashtbl.iter (fun _ conn -> T.close_conn conn) t.controls;
  Hashtbl.reset t.controls;
  T.close t.client

(** The transport seam (DESIGN.md §12).

    The protocol's delivery path used to be hard-wired into the
    simulation engine; this module is the extracted interface every
    substrate implements instead. It owns the pieces that must not
    drift between transports:

    - the {!retry_policy} and the {!Flow} timeout/backoff machine the
      message-granular session layer runs on (the simulation engine's
      event handlers and the socket daemon's select loop call the same
      functions, with the same float arithmetic);
    - the {!Record} tagging that multiplexes protocol frames and
      control messages over one byte stream;
    - the {!Charge} counter discipline, so [wire_bytes_sent] and the
      connection counters mean the same thing everywhere;
    - the {!S} signature the in-memory ({!Sim_transport}) and socket
      ({!Socket_transport}) transports implement, and over which
      {!Session_client} runs one anti-entropy session.

    Frames themselves ({!Edb_persist.Frame}) are transport-agnostic
    bytes; a stream transport adds a length prefix
    ({!Edb_persist.Frame.to_wire}) and the {!Record} tag, nothing
    else — the simulated and socket transports ship byte-identical
    protocol payloads. *)

(** {1 Retry policy} *)

type retry_policy = {
  timeout : float;  (** Per-attempt reply deadline, seconds. *)
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  jitter : float;
      (** Multiplicative jitter bound: the backoff is scaled by
          [1 + jitter * u] for a uniform draw [u] in [\[0, 1)]. *)
  max_retries : int;  (** Attempts beyond the first before abandoning. *)
}

val default_retry_policy : retry_policy
(** 4 s timeout, 0.5 s base doubling to an 8 s cap, 0.5 jitter, 3
    retries — the values the simulation has always used (the canonical
    definition moved here from [Edb_sim.Engine], which re-exports
    it). *)

(** The session retry machine: pure decisions from (policy, attempt),
    so every transport — and every replayed explorer schedule —
    computes identical backoffs from identical draws. *)
module Flow : sig
  type verdict =
    | Abandon  (** Retry budget exhausted: leave it to anti-entropy. *)
    | Retry of { attempt : int; backoff : float }
        (** Re-send as attempt [attempt] (1-based beyond the first
            send) after [backoff] seconds, {e before} jitter. *)

  val on_timeout : retry_policy -> attempt:int -> verdict
  (** Verdict when attempt [attempt] (0-based) timed out. *)

  val jittered : retry_policy -> float -> u:float -> float
  (** [jittered policy backoff ~u] applies the policy's multiplicative
      jitter using the caller's uniform draw [u] — the caller owns the
      randomness source (the engine draws from its replayable PRNG). *)
end

(** {1 Stream records} *)

(** One stream record is a tag byte then the payload: ['F'] an encoded
    protocol frame, ['C'] a daemon control message. The tag sits
    outside the frame bytes, which stay identical to the simulated
    transport's. *)
module Record : sig
  type t = Frame of string | Control of string

  val frame : string -> string

  val control : string -> string

  val classify : string -> (t, string) result
end

(** {1 Counter charges} *)

(** The charges every frame-shipping path applies, so both transports
    account identically (see the counter docs in
    {!Edb_metrics.Counters}). *)
module Charge : sig
  val request : Edb_core.Node.t -> string -> unit
  (** Charge sending the encoded request [frame]: one message, the
      modeled request bytes, and the frame's true length as wire
      bytes. *)

  val push : Edb_core.Node.t -> updates:Edb_core.Message.push_update list -> string -> unit
  (** Charge flushing one push frame carrying [updates]. *)

  val dial : ?retry:bool -> Edb_metrics.Counters.t -> unit
  (** Charge one transport dial ([connections_opened]); [retry] also
      charges [connection_retries]. *)
end

(** {1 Frame dispatch} *)

val frame_kind : string -> [ `Request | `Reply | `Nak | `Push ] option
(** Peek a frame's kind from its header byte; [None] for garbage. *)

val serve_frame :
  ?apply_push:(source:int -> Edb_core.Message.push_update -> unit) ->
  Edb_core.Node.t ->
  src:int ->
  string ->
  string option
(** The passive (server) side of frame dispatch, shared by the daemon
    and the in-memory transport: a request is answered (reply or nak)
    through {!Edb_persist.Frame.respond} — the returned frame should go
    back on the same connection — a push is decoded and applied (via
    [apply_push] when given, so a durable node can journal it), and
    anything else (late replies, garbage) drops silently, repaired by
    anti-entropy. *)

(** {1 The transport signature} *)

(** What a delivery substrate provides: dial a peer, move whole
    records, tear down. Implementations: {!Sim_transport} (in-memory,
    deterministic, faultable) and {!Socket_transport} (Unix-domain and
    TCP sockets). [recv] returns whole records — stream transports
    reassemble them through {!Edb_persist.Frame.Reader}. *)
module type S = sig
  type t
  (** One endpoint, owning this node's connections. *)

  type conn
  (** One established, peer-identified connection. *)

  val id : t -> int

  val connect : t -> peer:int -> (conn, string) result

  val send : conn -> string -> (unit, string) result

  val recv : ?timeout:float -> conn -> (string, string) result
  (** The next whole record; [Error] on timeout, peer close, or a
      corrupt stream. *)

  val peer : conn -> int

  val close_conn : conn -> unit

  val pause : t -> float -> unit
  (** Sleep between retry attempts — wall-clock for sockets, a no-op
      for the synchronous in-memory transport. *)
end

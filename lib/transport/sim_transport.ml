module Node = Edb_core.Node

(* The in-memory transport: the same seam the socket transport
   implements, but synchronous and deterministic — a send is served by
   the destination's registered handler on the spot, and the only
   faults are the ones a test injects through [set_drop]. The
   simulation engine does not route through endpoint objects (its
   delivery is event-queue scheduling); it uses [hop] below, which owns
   the fault draw order both it and the explorer schedules depend
   on. *)

(* One directed hop through a faulty network, in the draw order the
   engine has always used and replayed schedules rely on: a blocked
   pair short-circuits every draw; otherwise draw loss, then a delay
   for the delivery, then duplication, then a delay for the duplicate.
   The closures let the engine keep its own [Network] and PRNG streams
   without this library depending on them. *)
let hop ~blocked ~lost ~delay ~duplicated ~deliver =
  if (not (blocked ())) && not (lost ()) then begin
    deliver (delay ());
    if duplicated () then deliver (delay ())
  end

type handler = src:int -> string -> string option

type net = {
  peers : (int, handler) Hashtbl.t;
  mutable drop : unit -> bool;
}

let create_net () = { peers = Hashtbl.create 8; drop = (fun () -> false) }

let set_drop net f = net.drop <- f

let register net ~id handler = Hashtbl.replace net.peers id handler

let unregister net ~id = Hashtbl.remove net.peers id

let serve_node net node =
  register net ~id:(Node.id node) (fun ~src record ->
      match Transport.Record.classify record with
      | Ok (Transport.Record.Frame frame) ->
        Option.map Transport.Record.frame (Transport.serve_frame node ~src frame)
      | Ok (Transport.Record.Control _) | Error _ -> None)

type t = { net : net; ep_id : int }

let endpoint net ~id = { net; ep_id = id }

type conn = { ep : t; peer_id : int; rx : string Queue.t }

let id t = t.ep_id

let connect t ~peer =
  if Hashtbl.mem t.net.peers peer then
    Ok { ep = t; peer_id = peer; rx = Queue.create () }
  else Error (Printf.sprintf "sim: peer %d not registered" peer)

let send conn record =
  (* A dropped record vanishes without error, like a lost datagram; the
     caller only notices when [recv] times out. The reply direction
     draws its own drop, so a test can lose either half of a session. *)
  if conn.ep.net.drop () then Ok ()
  else
    match Hashtbl.find_opt conn.ep.net.peers conn.peer_id with
    | None -> Error (Printf.sprintf "sim: peer %d went away" conn.peer_id)
    | Some handler -> (
      match handler ~src:conn.ep.ep_id record with
      | None -> Ok ()
      | Some reply ->
        if not (conn.ep.net.drop ()) then Queue.push reply conn.rx;
        Ok ())

let recv ?timeout:_ conn =
  match Queue.take_opt conn.rx with
  | Some r -> Ok r
  | None -> Error "sim: timeout (no reply queued)"

let peer conn = conn.peer_id

let close_conn _ = ()

let pause _ _ = ()

(** The initiator side of one anti-entropy session over any
    {!Transport.S} — the blocking reference implementation of the
    message-granular session layer, sharing {!Transport.Flow} (retry
    arithmetic) and {!Transport.Charge} (counter discipline) with the
    simulation engine's event-queue implementation and the daemon's
    select loop. *)

type outcome =
  | Synced of [ `Propagated | `Current | `Nak ]
  | Abandoned of string

module Make (T : Transport.S) : sig
  val pull :
    T.t ->
    node:Edb_core.Node.t ->
    peer:int ->
    ?policy:Transport.retry_policy ->
    ?rand:(unit -> float) ->
    ?accept:(source:int -> Edb_core.Message.propagation_reply -> unit) ->
    unit ->
    outcome
  (** One session pulling [peer]'s updates into [node]: dial, send the
      request (re-encoded fresh on every attempt), await the reply
      within [policy.timeout], accept it (through [accept] when given,
      so a durable node can journal first). Failed attempts charge
      [timeouts] and retry with jittered exponential backoff ([rand]
      supplies the uniform draw) until the budget abandons. *)

  val push :
    T.t ->
    node:Edb_core.Node.t ->
    peer:int ->
    Edb_core.Message.push_update list ->
    (unit, string) result
  (** Flush one push frame: charged on hand-off, fire-and-forget. *)
end

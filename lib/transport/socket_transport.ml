module Frame = Edb_persist.Frame
module Codec = Edb_persist.Codec

(* Unix-domain / TCP sockets behind the {!Transport.S} seam. A
   connection carries length-prefixed stream records
   ([Frame.to_wire]); the receive side reassembles them through
   [Frame.Reader], so partial reads and short writes are invisible
   above this module. Peer identity is established by an 8-byte
   handshake (magic + little-endian id) right after connect — frames
   do not carry a sender id, and the passive side needs one for
   per-peer negotiation state. *)

type addr = Unix_path of string | Tcp of { host : string; port : int }

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
    Ok (Unix_path (String.sub s (i + 1) (String.length s - i - 1)))
  | Some i when String.sub s 0 i = "tcp" -> (
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "bad tcp address %S (want tcp:HOST:PORT)" s)
    | Some j -> (
      let host = String.sub rest 0 j in
      match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
      | Some port -> Ok (Tcp { host; port })
      | None -> Error (Printf.sprintf "bad tcp port in %S" s)))
  | _ -> Error (Printf.sprintf "bad address %S (want unix:PATH or tcp:HOST:PORT)" s)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))

let sockaddr_of_addr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp { host; port } -> Unix.ADDR_INET (resolve_host host, port)

let domain_of_addr = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

type t = {
  ep_id : int;
  peers : (int * addr) list;
  listen_fd : Unix.file_descr option;
  mutable listen_addr : addr option;
  mutable listen_nonblock : bool;
  mutable closed : bool;
}

type conn = {
  fd : Unix.file_descr;
  (* -1 on an accepted non-blocking connection until its inbound
     handshake completes ([hs_need] reaches 0). *)
  mutable peer_id : int;
  reader : Frame.Reader.t;
  chunk : Bytes.t;
  mutable conn_closed : bool;
  mutable nonblocking : bool;
  (* Pending output. [send] on a non-blocking connection only appends
     here (coalescing any number of records); [flush_output] pushes the
     bytes with as few write(2) calls as the socket accepts, resuming
     mid-record across calls via [out_pos] (the consumed prefix). *)
  out : Buffer.t;
  mutable out_pos : int;
  (* Inbound handshake bytes still owed (accepted non-blocking
     connections read their 8-byte handshake through the same
     [read_into] path as records). *)
  mutable hs_need : int;
  hs_buf : Bytes.t;
}

(* A slow peer that stops reading accumulates output here; past this
   cap the connection is declared broken rather than letting one peer
   grow the buffer without bound. *)
let max_pending_output = 8 * 1024 * 1024

let chunk_size = 65536

let magic = "EDB1"

let handshake_len = 8

(* Interrupted syscalls just retry; every other Unix error surfaces as
   [Error] with its message. *)
let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let unix_result f =
  match retry_eintr f with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let write_all fd data =
  let len = String.length data in
  let bytes = Bytes.unsafe_of_string data in
  let rec loop off =
    if off < len then begin
      let n = retry_eintr (fun () -> Unix.write fd bytes off (len - off)) in
      if n = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
      loop (off + n)
    end
  in
  loop 0

(* Read exactly [n] bytes (used only for the fixed-size handshake;
   records flow through the incremental reader). *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec loop off =
    if off < n then begin
      let k = retry_eintr (fun () -> Unix.read fd buf off (n - off)) in
      if k = 0 then failwith "peer closed during handshake";
      loop (off + k)
    end
  in
  loop 0;
  Bytes.to_string buf

let encode_handshake id =
  let b = Bytes.create handshake_len in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_int32_le b 4 (Int32.of_int id);
  Bytes.to_string b

let decode_handshake s =
  if String.length s <> handshake_len || String.sub s 0 4 <> magic then
    Error "bad handshake"
  else Ok (Int32.to_int (String.get_int32_le s 4))

let create ?listen ~id ~peers () =
  match listen with
  | None ->
    Ok
      {
        ep_id = id;
        peers;
        listen_fd = None;
        listen_addr = None;
        listen_nonblock = false;
        closed = false;
      }
  | Some addr -> (
    match
      unix_result (fun () ->
          (match addr with
          | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
          | Tcp _ -> ());
          let fd = Unix.socket (domain_of_addr addr) Unix.SOCK_STREAM 0 in
          (match addr with
          | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
          | Unix_path _ -> ());
          Unix.bind fd (sockaddr_of_addr addr);
          Unix.listen fd 64;
          (* Port 0 asks the kernel to pick: read back what it chose. *)
          let bound =
            match (addr, Unix.getsockname fd) with
            | Tcp { host; _ }, Unix.ADDR_INET (_, port) -> Tcp { host; port }
            | _ -> addr
          in
          (fd, bound))
    with
    | Error _ as e -> e
    | Ok (fd, bound) ->
      Ok
        {
          ep_id = id;
          peers;
          listen_fd = Some fd;
          listen_addr = Some bound;
          listen_nonblock = false;
          closed = false;
        })

let id t = t.ep_id

let listen_addr t = t.listen_addr

let listen_fd t = t.listen_fd

let make_conn fd peer_id =
  {
    fd;
    peer_id;
    reader = Frame.Reader.create ();
    chunk = Bytes.create chunk_size;
    conn_closed = false;
    nonblocking = false;
    out = Buffer.create 256;
    out_pos = 0;
    hs_need = 0;
    hs_buf = Bytes.create handshake_len;
  }

let connect t ~peer =
  match List.assoc_opt peer t.peers with
  | None -> Error (Printf.sprintf "no address for peer %d" peer)
  | Some addr ->
    unix_result (fun () ->
        let fd = Unix.socket (domain_of_addr addr) Unix.SOCK_STREAM 0 in
        match
          Unix.connect fd (sockaddr_of_addr addr);
          write_all fd (encode_handshake t.ep_id)
        with
        | () -> make_conn fd peer
        | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e)

let accept ?timeout t =
  match t.listen_fd with
  | None -> Error "endpoint is not listening"
  | Some lfd -> (
    let ready =
      match timeout with
      | None -> true
      | Some tmo ->
        let r, _, _ = retry_eintr (fun () -> Unix.select [ lfd ] [] [] tmo) in
        r <> []
    in
    if not ready then Error "accept timeout"
    else
      match
        unix_result (fun () ->
            let fd, _ = Unix.accept lfd in
            match
              (* The handshake is 8 bytes from a local client; a peer
                 that stalls it is broken, so bound the wait. *)
              let r, _, _ = Unix.select [ fd ] [] [] 5.0 in
              if r = [] then failwith "handshake timeout";
              read_exact fd handshake_len
            with
            | hs -> (fd, hs)
            | exception e ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              raise e)
      with
      | Error _ as e -> e
      | Ok (fd, hs) -> (
        match decode_handshake hs with
        | Ok peer_id -> Ok (make_conn fd peer_id)
        | Error _ as e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          e)
      | exception Failure msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* Non-blocking surface: dial, deferred-handshake accept, buffered     *)
(* sends with partial-write resumption.                                *)
(* ------------------------------------------------------------------ *)

(* Dial a peer without blocking: the connect is issued non-blocking
   (EINPROGRESS is success-so-far) and the outbound handshake is queued
   in the output buffer rather than written inline, so the caller's
   event loop drives it out through [flush_output] alongside whatever
   records it coalesces behind it. A connect failure that the kernel
   can report immediately (ECONNREFUSED on a Unix socket, no listener)
   still surfaces here as [Error]; late failures surface from the first
   flush or read. *)
let dial t ~peer =
  match List.assoc_opt peer t.peers with
  | None -> Error (Printf.sprintf "no address for peer %d" peer)
  | Some addr ->
    unix_result (fun () ->
        let fd = Unix.socket (domain_of_addr addr) Unix.SOCK_STREAM 0 in
        match
          Unix.set_nonblock fd;
          (try Unix.connect fd (sockaddr_of_addr addr)
           with
           | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
           -> ());
          let conn = make_conn fd peer in
          conn.nonblocking <- true;
          Buffer.add_string conn.out (encode_handshake t.ep_id);
          conn
        with
        | conn -> conn
        | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e)

(* Accept without blocking (the listening fd is switched to
   non-blocking on first use): [Ok None] means nothing was pending —
   including the benign race where the peer aborted between select and
   accept. The inbound handshake is *not* read here; the connection
   starts with [peer conn = -1] and learns its identity through
   [read_into] once the 8 bytes arrive, so a peer that stalls its
   handshake cannot stall the loop. *)
let accept_nonblocking t =
  match t.listen_fd with
  | None -> Error "endpoint is not listening"
  | Some lfd -> (
    if not t.listen_nonblock then begin
      Unix.set_nonblock lfd;
      t.listen_nonblock <- true
    end;
    match retry_eintr (fun () -> Unix.accept lfd) with
    | fd, _ ->
      Unix.set_nonblock fd;
      let conn = make_conn fd (-1) in
      conn.nonblocking <- true;
      conn.hs_need <- handshake_len;
      Ok (Some conn)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
    -> Ok None
    | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let pending_output conn = Buffer.length conn.out - conn.out_pos

let want_write conn = pending_output conn > 0

let handshake_done conn = conn.hs_need = 0 && conn.peer_id >= 0

(* Push buffered output out with as few write(2) calls as the socket
   accepts. [`Blocked] (EAGAIN et al., including a connect still in
   progress) leaves the unsent suffix for the next call — partial
   writes resume at [out_pos], possibly mid-record; the receiving
   Frame.Reader reassembles regardless of where the split landed. *)
let flush_output conn =
  let len = Buffer.length conn.out in
  if conn.out_pos >= len then `Drained
  else begin
    let data = Buffer.to_bytes conn.out in
    let result =
      let rec loop () =
        let remaining = len - conn.out_pos in
        if remaining = 0 then `Drained
        else
          match Unix.write conn.fd data conn.out_pos remaining with
          | 0 -> `Error "write: wrote 0 bytes"
          | n ->
            conn.out_pos <- conn.out_pos + n;
            loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception
              Unix.Unix_error
                ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINPROGRESS | Unix.ENOTCONN),
                  _,
                  _ ) -> `Blocked
          | exception Unix.Unix_error (e, fn, _) ->
            `Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      in
      loop ()
    in
    (match result with
    | `Drained ->
      Buffer.clear conn.out;
      conn.out_pos <- 0
    | `Blocked when conn.out_pos > chunk_size ->
      (* Compact a long-consumed prefix so a slow peer doesn't keep the
         whole history buffered. *)
      let rest = Bytes.sub_string data conn.out_pos (len - conn.out_pos) in
      Buffer.clear conn.out;
      Buffer.add_string conn.out rest;
      conn.out_pos <- 0
    | `Blocked | `Error _ -> ());
    result
  end

(* On a non-blocking connection [send] only buffers — no syscall — so
   records queued while a group-commit batch is open cannot reach the
   wire before the loop's WAL sync; the event loop releases them
   afterwards via [flush_output], coalesced into one write. Blocking
   connections keep the write-it-now semantics. *)
let send conn record =
  if conn.nonblocking then begin
    if pending_output conn > max_pending_output then
      Error "output buffer overflow (slow peer)"
    else begin
      Buffer.add_string conn.out (Frame.to_wire record);
      Ok ()
    end
  end
  else
    match unix_result (fun () -> write_all conn.fd (Frame.to_wire record)) with
    | Ok () -> Ok ()
    | Error _ as e -> e

(* One read(2) into the reassembly reader. [`Data] includes reads that
   completed buffered records (poll [next_record] after) and spurious
   wakeups that fed nothing. On accepted non-blocking connections the
   first 8 bytes are the peer's handshake and are consumed here before
   any record bytes reach the reader. *)
let read_into conn =
  match retry_eintr (fun () -> Unix.read conn.fd conn.chunk 0 chunk_size) with
  | 0 -> `Eof
  | n ->
    if conn.hs_need > 0 then begin
      let take = min conn.hs_need n in
      Bytes.blit conn.chunk 0 conn.hs_buf (handshake_len - conn.hs_need) take;
      conn.hs_need <- conn.hs_need - take;
      if conn.hs_need > 0 then `Data
      else
        match decode_handshake (Bytes.to_string conn.hs_buf) with
        | Error msg -> `Error msg
        | Ok peer_id ->
          conn.peer_id <- peer_id;
          if n > take then
            Frame.Reader.feed conn.reader ~off:take ~len:(n - take)
              (Bytes.unsafe_to_string conn.chunk);
          `Data
    end
    else begin
      Frame.Reader.feed conn.reader ~len:n (Bytes.unsafe_to_string conn.chunk);
      `Data
    end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Data
  | exception Unix.Unix_error (e, fn, _) ->
    `Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let next_record conn = Frame.Reader.next conn.reader

let recv ?timeout conn =
  let deadline = Option.map (fun tmo -> Unix.gettimeofday () +. tmo) timeout in
  let rec loop () =
    match Frame.Reader.next conn.reader with
    | Some record -> Ok record
    | None -> (
      let wait =
        match deadline with
        | None -> -1.0
        | Some d ->
          let w = d -. Unix.gettimeofday () in
          if w <= 0.0 then 0.0 else w
      in
      if wait = 0.0 then Error "recv timeout"
      else
        let r, _, _ = retry_eintr (fun () -> Unix.select [ conn.fd ] [] [] wait) in
        if r = [] then Error "recv timeout"
        else
          match read_into conn with
          | `Data -> loop ()
          | `Eof -> Error "peer closed connection"
          | `Error msg -> Error msg)
  in
  try loop () with Codec.Reader.Corrupt msg -> Error ("corrupt stream: " ^ msg)

let peer conn = conn.peer_id

let fd conn = conn.fd

let close_conn conn =
  if not conn.conn_closed then begin
    conn.conn_closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.listen_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    match t.listen_addr with
    | Some (Unix_path p) -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Some (Tcp _) | None -> ()
  end

let pause _ seconds = if seconds > 0.0 then retry_eintr (fun () -> Unix.sleepf seconds)

module Node = Edb_core.Node
module Message = Edb_core.Message
module Counters = Edb_metrics.Counters
module Frame = Edb_persist.Frame
module Codec = Edb_persist.Codec

(* The transport seam (DESIGN.md §12). Everything a delivery substrate
   needs to carry the protocol lives here — the retry policy and its
   timeout/backoff arithmetic, the stream record tagging, the counter
   charges both transports must apply identically, and the signature
   ([S]) the simulated and socket transports implement. The simulation
   engine and the socket daemon consume the same definitions, so a
   behavior (say, the backoff curve) cannot drift between them. *)

type retry_policy = {
  timeout : float;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  jitter : float;
  max_retries : int;
}

let default_retry_policy =
  {
    timeout = 4.0;
    backoff_base = 0.5;
    backoff_factor = 2.0;
    backoff_max = 8.0;
    jitter = 0.5;
    max_retries = 3;
  }

module Flow = struct
  (* The session retry machine, shared verbatim between the simulation
     engine's event handlers and the daemon's select loop. The float
     arithmetic (min-then-multiply order, [attempt - 1] exponent) is
     load-bearing: explorer schedules replay byte-identically only if
     every transport computes the same backoff from the same draws. *)

  type verdict = Abandon | Retry of { attempt : int; backoff : float }

  let on_timeout policy ~attempt =
    if attempt >= policy.max_retries then Abandon
    else
      let attempt = attempt + 1 in
      let backoff =
        Float.min policy.backoff_max
          (policy.backoff_base
          *. (policy.backoff_factor ** float_of_int (attempt - 1)))
      in
      Retry { attempt; backoff }

  let jittered policy backoff ~u = backoff *. (1.0 +. (policy.jitter *. u))
end

module Record = struct
  (* One stream record is a tag byte then the payload: ['F'] carries an
     encoded {!Frame} (request, reply, nak, push), ['C'] a control
     message private to the daemon (client commands, admin). Frames
     stay byte-identical to the simulated transport's — the tag lives
     outside them, alongside the length prefix. *)

  type t = Frame of string | Control of string

  let frame payload = "F" ^ payload

  let control payload = "C" ^ payload

  let classify record =
    if String.length record = 0 then Error "empty stream record"
    else
      let body = String.sub record 1 (String.length record - 1) in
      match record.[0] with
      | 'F' -> Ok (Frame body)
      | 'C' -> Ok (Control body)
      | c -> Error (Printf.sprintf "unknown stream record tag %C" c)
end

module Charge = struct
  (* Counter charges shared by every frame-shipping path — the
     simulation engine, the socket daemon, and the blocking session
     client — so [wire_bytes_sent] and the connection counters mean the
     same thing on both transports. *)

  let request node frame =
    let c = Node.counters node in
    c.Counters.messages <- c.Counters.messages + 1;
    c.Counters.bytes_sent <-
      c.Counters.bytes_sent + Message.request_bytes (Node.propagation_request node);
    c.Counters.wire_bytes_sent <- c.Counters.wire_bytes_sent + String.length frame

  let push node ~updates frame =
    let c = Node.counters node in
    c.Counters.messages <- c.Counters.messages + 1;
    c.Counters.push_sent <- c.Counters.push_sent + List.length updates;
    c.Counters.bytes_sent <- c.Counters.bytes_sent + Message.push_bytes updates;
    c.Counters.wire_bytes_sent <- c.Counters.wire_bytes_sent + String.length frame;
    c.Counters.push_wire_bytes <- c.Counters.push_wire_bytes + String.length frame

  let dial ?(retry = false) (c : Counters.t) =
    c.Counters.connections_opened <- c.Counters.connections_opened + 1;
    if retry then c.Counters.connection_retries <- c.Counters.connection_retries + 1
end

(* Frame kind, from the header byte at payload offset 2 (see
   [Frame]: version; advertised; kind). Locally produced frames are
   well-formed, so a raw peek suffices; anything shorter than a header
   plus checksum trailer is garbage. *)
let frame_kind frame =
  if String.length frame < 7 then None
  else
    match Char.code frame.[2] with
    | 0 -> Some `Request
    | 1 -> Some `Reply
    | 2 -> Some `Nak
    | 3 -> Some `Push
    | _ -> None

let serve_frame ?apply_push node ~src frame =
  let apply_push =
    match apply_push with
    | Some f -> f
    | None ->
      fun ~source u ->
        let (_ : [ `Applied | `Stale ]) = Node.apply_push node ~source u in
        ()
  in
  match frame_kind frame with
  | Some `Request ->
    (* [respond] answers an undecodable request with a nak itself. *)
    Some (Frame.respond node ~src frame)
  | Some `Push ->
    (try List.iter (apply_push ~source:src) (Frame.decode_push node ~src frame)
     with Codec.Reader.Corrupt _ -> ());
    None
  | Some (`Reply | `Nak) | None ->
    (* Replies and naks outside a session context — late duplicates of a
       completed session — and garbage both drop silently; anti-entropy
       repairs whatever they would have carried. *)
    None

module type S = sig
  type t

  type conn

  val id : t -> int

  val connect : t -> peer:int -> (conn, string) result

  val send : conn -> string -> (unit, string) result

  val recv : ?timeout:float -> conn -> (string, string) result

  val peer : conn -> int

  val close_conn : conn -> unit

  val pause : t -> float -> unit
end

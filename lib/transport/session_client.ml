module Node = Edb_core.Node
module Message = Edb_core.Message
module Counters = Edb_metrics.Counters
module Frame = Edb_persist.Frame
module Codec = Edb_persist.Codec

(* The active (initiator) side of one message-granular anti-entropy
   session, over any {!Transport.S}: dial, send the encoded request,
   await the reply, accept it — with the shared {!Transport.Flow}
   timeout/retry/abandon machinery and the shared {!Transport.Charge}
   counter discipline. The simulation engine implements the same flow
   inside its event queue (it cannot block); this blocking runner is
   the seam's reference implementation, used by tests over the
   in-memory transport and by one-shot socket clients. *)

type outcome =
  | Synced of [ `Propagated | `Current | `Nak ]
      (** A reply arrived: data accepted, already current, or a nak
          (the delta baseline was dropped; the next round ships an
          absolute vector — a round lost, never correctness). *)
  | Abandoned of string
      (** Retry budget exhausted; the last error. Anti-entropy
          repairs on a later round. *)

module Make (T : Transport.S) = struct
  let pull t ~node ~peer ?(policy = Transport.default_retry_policy)
      ?(rand = fun () -> 0.0) ?accept () =
    let accept =
      match accept with
      | Some f -> f
      | None ->
        fun ~source reply ->
          let (_ : Node.accept_result) =
            Node.accept_propagation node ~source reply
          in
          ()
    in
    let c = Node.counters node in
    let rec attempt_loop attempt =
      Transport.Charge.dial ~retry:(attempt > 0) c;
      let result =
        match T.connect t ~peer with
        | Error e -> Error e
        | Ok conn ->
          Fun.protect ~finally:(fun () -> T.close_conn conn) @@ fun () -> (
          (* Re-encode on every attempt: fresh request id, current
             vectors — exactly what the engine's retry path does. *)
          let frame = Frame.encode_request node ~dst:peer in
          Transport.Charge.request node frame;
          match T.send conn (Transport.Record.frame frame) with
          | Error e -> Error e
          | Ok () -> (
            match T.recv ~timeout:policy.Transport.timeout conn with
            | Error e -> Error e
            | Ok record -> (
              match Transport.Record.classify record with
              | Error e -> Error e
              | Ok (Transport.Record.Control _) -> Error "unexpected control record"
              | Ok (Transport.Record.Frame reply) -> (
                match Frame.decode_reply node ~src:peer reply with
                | Frame.Nak _ -> Ok (Synced `Nak)
                | Frame.Reply (Message.You_are_current, _) -> Ok (Synced `Current)
                | Frame.Reply (r, _) ->
                  accept ~source:peer r;
                  Ok (Synced `Propagated)
                | exception Codec.Reader.Corrupt msg ->
                  Error ("corrupt reply: " ^ msg)))))
      in
      match result with
      | Ok outcome -> outcome
      | Error err -> (
        (* Every failed attempt — refused dial, lost record, corrupt or
           late reply — lands here as a timeout, the same single
           failure mode the simulated transport has. *)
        c.Counters.timeouts <- c.Counters.timeouts + 1;
        match Transport.Flow.on_timeout policy ~attempt with
        | Transport.Flow.Abandon ->
          c.Counters.sessions_abandoned <- c.Counters.sessions_abandoned + 1;
          Abandoned err
        | Transport.Flow.Retry { attempt; backoff } ->
          c.Counters.retries <- c.Counters.retries + 1;
          T.pause t (Transport.Flow.jittered policy backoff ~u:(rand ()));
          attempt_loop attempt)
    in
    attempt_loop 0

  let push t ~node ~peer updates =
    (* Fire-and-forget, like the engine's push flush: charged when
       handed to the transport, no retry, no acknowledgement — a lost
       push frame is repaired by the next anti-entropy session. *)
    let frame = Frame.encode_push node ~dst:peer updates in
    Transport.Charge.push node ~updates frame;
    Transport.Charge.dial (Node.counters node);
    match T.connect t ~peer with
    | Error _ as e -> e
    | Ok conn ->
      let r = T.send conn (Transport.Record.frame frame) in
      T.close_conn conn;
      r
end

(** The multi-process cluster harness behind `edb_cli cluster`.

    Boots N `serve` daemons (one [fork]ed process each, Unix-domain
    sockets or TCP), drives them over the {!Daemon.Control} protocol,
    kills ([SIGKILL], nothing flushed) and restarts daemons mid-run —
    restart recovers from the WAL — and decides convergence by
    exporting every node's snapshot and comparing stores.

    Deliberately independent of [lib/check] (whose library depends on
    this one's consumers): the invariant battery is {e injected} by
    the caller — pass [Edb_check.Invariant.check_node] to
    {!await_converged}. *)

type kind = [ `Tcp | `Unix ]

type t

val start :
  ?kind:kind ->
  ?ae_period:float ->
  ?retry:Transport.retry_policy ->
  ?push:Edb_push.Channel.config ->
  ?seed:int ->
  ?checkpoint_every:int ->
  ?max_runtime:float ->
  ?control_timeout:float ->
  ?max_sessions:int ->
  dir:string ->
  n:int ->
  unit ->
  t
(** Fork and boot the cluster under [dir] (created if missing; one
    state subdirectory and — for [`Unix] — one socket per node).
    Daemons self-terminate after [max_runtime] (default 120 s), the
    harness's outermost hang guard. Control dials retry for
    [control_timeout] (default 5 s), covering daemon boot time.
    [max_sessions] is passed through to every daemon (the concurrent
    anti-entropy fan-out; the daemon's default is 4). *)

val running : t -> node:int -> bool

val update :
  t -> node:int -> item:string -> Edb_store.Operation.t -> (unit, string) result

val read : t -> node:int -> item:string -> (string option, string) result

val export : t -> node:int -> (Edb_core.Node.t, string) result
(** The node's current state, as a decoded snapshot blob. *)

val counters_of : t -> node:int -> ((string * int) list, string) result
(** The node's live counters, in {!Edb_metrics.Counters.fields}
    order. *)

val checkpoint : t -> node:int -> (unit, string) result

val kill : t -> node:int -> unit
(** [SIGKILL] the daemon and reap it — no shutdown path runs; the WAL
    on disk is all {!restart} will find. No-op if not running. *)

val stop : t -> node:int -> unit
(** Graceful: send [Quit], then reap (escalating to [SIGKILL] only if
    the daemon ignores it). *)

val restart : t -> node:int -> unit
(** Fork the daemon again over its existing state directory; recovery
    replays checkpoint + WAL. No-op if still running. *)

val agree : Edb_core.Node.t list -> bool
(** Store-level convergence over exported nodes — the same judgement
    [Edb_core.Cluster.converged] makes in process: no auxiliary copies,
    equal (per-shard) DBVVs, item-for-item equal stores. *)

val await_converged :
  ?deadline:float ->
  ?poll:float ->
  ?invariant:(Edb_core.Node.t -> (unit, string) result) ->
  t ->
  (float, string) result
(** Poll exports until {!agree}, returning the elapsed seconds.
    [invariant] (e.g. [Edb_check.Invariant.check_node]) runs on every
    exported node of every sample and fails the wait immediately;
    unreachable nodes keep the poll spinning until [deadline]
    (default 30 s). *)

val shutdown : t -> unit
(** {!stop} every running daemon and release client connections. *)

module Node = Edb_core.Node
module Message = Edb_core.Message
module Counters = Edb_metrics.Counters
module Operation = Edb_store.Operation
module Prng = Edb_util.Prng
module Frame = Edb_persist.Frame
module Codec = Edb_persist.Codec
module Wire = Edb_persist.Wire
module Snapshot = Edb_persist.Snapshot
module Durable_node = Edb_persist.Durable_node
module Channel = Edb_push.Channel
module T = Socket_transport

(* One protocol node as a process: a {!Durable_node} (WAL + checkpoint)
   served over a {!Socket_transport} select loop. The daemon is both
   sides of the protocol at once — it answers inbound requests and
   pushes, and runs its own anti-entropy timer as the initiator — so
   the session state machine here must not block: an in-flight session
   is just another fd in the select set, with its reply deadline and
   backoff handled as timers. The timeout/retry arithmetic is the
   shared {!Transport.Flow}; the counter charges are the shared
   {!Transport.Charge}. *)

module Config = struct
  type t = {
    id : int;
    n : int;
    dir : string;
    listen : T.addr;
    peers : (int * T.addr) list;
    ae_period : float;
    retry : Transport.retry_policy;
    push : Channel.config option;
    seed : int;
    checkpoint_every : int;
    max_runtime : float option;
  }

  let make ?(ae_period = 0.05) ?(retry = { Transport.default_retry_policy with timeout = 0.5 })
      ?push ?(seed = 1) ?(checkpoint_every = 0) ?max_runtime ~id ~n ~dir ~listen ~peers
      () =
    { id; n; dir; listen; peers; ae_period; retry; push; seed; checkpoint_every; max_runtime }
end

(* The client-facing control protocol, one {!Codec} envelope per
   record behind the ['C'] tag: how the harness (and `edb_cli cluster`)
   drives updates, reads state, and shuts a daemon down. *)
module Control = struct
  type request =
    | Ping
    | Update of { item : string; op : Operation.t }
    | Read of { item : string }
    | Export
    | Counters_req
    | Checkpoint
    | Quit

  type reply =
    | Ack
    | Value of string option
    | State of string
    | Stats of (string * int) list
    | Failed of string

  let encode_request r =
    Codec.Writer.with_scratch (fun w ->
        (match r with
        | Ping -> Codec.Writer.byte w 0
        | Update { item; op } ->
          Codec.Writer.byte w 1;
          Codec.Writer.string w item;
          Wire.encode_operation w op
        | Read { item } ->
          Codec.Writer.byte w 2;
          Codec.Writer.string w item
        | Export -> Codec.Writer.byte w 3
        | Counters_req -> Codec.Writer.byte w 4
        | Checkpoint -> Codec.Writer.byte w 5
        | Quit -> Codec.Writer.byte w 6);
        Codec.Writer.contents w)

  let decode_request data =
    let r = Codec.Reader.create data in
    let req =
      match Codec.Reader.byte r with
      | 0 -> Ping
      | 1 ->
        let item = Codec.Reader.string r in
        let op = Wire.decode_operation r in
        Update { item; op }
      | 2 -> Read { item = Codec.Reader.string r }
      | 3 -> Export
      | 4 -> Counters_req
      | 5 -> Checkpoint
      | 6 -> Quit
      | tag -> raise (Codec.Reader.Corrupt (Printf.sprintf "unknown control request %d" tag))
    in
    Codec.Reader.expect_end r;
    req

  let encode_reply r =
    Codec.Writer.with_scratch (fun w ->
        (match r with
        | Ack -> Codec.Writer.byte w 0
        | Value v ->
          Codec.Writer.byte w 1;
          Codec.Writer.bool w (v <> None);
          Codec.Writer.string w (Option.value v ~default:"")
        | State s ->
          Codec.Writer.byte w 2;
          Codec.Writer.string w s
        | Stats fields ->
          Codec.Writer.byte w 3;
          Codec.Writer.list w
            (fun w (name, v) ->
              Codec.Writer.string w name;
              Codec.Writer.int w v)
            fields
        | Failed msg ->
          Codec.Writer.byte w 4;
          Codec.Writer.string w msg);
        Codec.Writer.contents w)

  let decode_reply data =
    let r = Codec.Reader.create data in
    let reply =
      match Codec.Reader.byte r with
      | 0 -> Ack
      | 1 ->
        let present = Codec.Reader.bool r in
        let v = Codec.Reader.string r in
        Value (if present then Some v else None)
      | 2 -> State (Codec.Reader.string r)
      | 3 ->
        Stats
          (Codec.Reader.list r (fun r ->
               let name = Codec.Reader.string r in
               let v = Codec.Reader.int r in
               (name, v)))
      | 4 -> Failed (Codec.Reader.string r)
      | tag -> raise (Codec.Reader.Corrupt (Printf.sprintf "unknown control reply %d" tag))
    in
    Codec.Reader.expect_end r;
    reply
end

(* The initiator-side session state machine, one at a time: either an
   attempt is in flight (a dialed connection with a reply deadline) or
   the session sits in its backoff window waiting to re-dial. *)
type session = {
  s_peer : int;
  mutable attempt : int;
  mutable sconn : T.conn option;
  mutable deadline : float;
  mutable retry_at : float;
}

type t = {
  config : Config.t;
  durable : Durable_node.t;
  transport : T.t;
  channel : Channel.t option;
  prng : Prng.t;
  started : float;
  mutable conns : T.conn list;
  mutable session : session option;
  mutable next_ae : float;
  mutable next_push : float;
  mutable quit : bool;
}

let node t = Durable_node.node t.durable

let counters t = Node.counters (node t)

let close_session_conn s =
  match s.sconn with
  | Some conn ->
    T.close_conn conn;
    s.sconn <- None
  | None -> ()

let session_done t =
  (match t.session with Some s -> close_session_conn s | None -> ());
  t.session <- None

(* A failed attempt — refused dial, send error, reply deadline passed,
   peer closed mid-session, corrupt reply — all funnel here, mirroring
   the simulated transport's single timeout failure mode. *)
let session_attempt_failed t s =
  close_session_conn s;
  let c = counters t in
  c.Counters.timeouts <- c.Counters.timeouts + 1;
  match Transport.Flow.on_timeout t.config.Config.retry ~attempt:s.attempt with
  | Transport.Flow.Abandon ->
    c.Counters.sessions_abandoned <- c.Counters.sessions_abandoned + 1;
    t.session <- None
  | Transport.Flow.Retry { attempt; backoff } ->
    c.Counters.retries <- c.Counters.retries + 1;
    s.attempt <- attempt;
    s.deadline <- 0.0;
    s.retry_at <-
      Unix.gettimeofday ()
      +. Transport.Flow.jittered t.config.Config.retry backoff ~u:(Prng.float t.prng 1.0)

let dial_session t s =
  let nd = node t in
  Transport.Charge.dial ~retry:(s.attempt > 0) (counters t);
  s.retry_at <- 0.0;
  match T.connect t.transport ~peer:s.s_peer with
  | Error _ -> session_attempt_failed t s
  | Ok conn -> (
    (* Re-encode per attempt: fresh request id, current vectors. *)
    let frame = Frame.encode_request nd ~dst:s.s_peer in
    Transport.Charge.request nd frame;
    match T.send conn (Transport.Record.frame frame) with
    | Error _ ->
      T.close_conn conn;
      session_attempt_failed t s
    | Ok () ->
      s.sconn <- Some conn;
      s.deadline <- Unix.gettimeofday () +. t.config.Config.retry.Transport.timeout)

let start_session t ~peer =
  if t.session = None then begin
    let s = { s_peer = peer; attempt = 0; sconn = None; deadline = 0.0; retry_at = 0.0 } in
    t.session <- Some s;
    dial_session t s
  end

let session_reply t s frame =
  match Frame.decode_reply (node t) ~src:s.s_peer frame with
  | Frame.Nak _ | Frame.Reply (Message.You_are_current, _) -> session_done t
  | Frame.Reply (reply, _) ->
    Durable_node.accept_reply t.durable ~source:s.s_peer reply;
    session_done t
  | exception Codec.Reader.Corrupt _ -> session_attempt_failed t s

let random_peer t =
  let n = t.config.Config.n in
  let peer = Prng.int t.prng (n - 1) in
  if peer >= t.config.Config.id then peer + 1 else peer

let flush_push t =
  match t.channel with
  | None -> ()
  | Some channel ->
    let nd = node t in
    List.iter
      (fun (dst, updates) ->
        let frame = Frame.encode_push nd ~dst updates in
        Transport.Charge.push nd ~updates frame;
        Transport.Charge.dial (counters t);
        (* Best effort end to end: a refused dial or failed write is a
           lost push frame, repaired by anti-entropy. *)
        match T.connect t.transport ~peer:dst with
        | Error _ -> ()
        | Ok conn ->
          let (_ : (unit, string) result) = T.send conn (Transport.Record.frame frame) in
          T.close_conn conn)
      (Channel.flush channel ~ready:(fun peer -> Frame.push_ready nd ~dst:peer))

let handle_control t conn payload =
  let reply =
    match Control.decode_request payload with
    | exception Codec.Reader.Corrupt msg -> Control.Failed ("bad control request: " ^ msg)
    | Control.Ping -> Control.Ack
    | Control.Update { item; op } ->
      Durable_node.update t.durable item op;
      Control.Ack
    | Control.Read { item } -> Control.Value (Node.read (node t) item)
    | Control.Export -> Control.State (Snapshot.encode (node t))
    | Control.Counters_req ->
      let c = counters t in
      Control.Stats (List.map (fun (name, get) -> (name, get c)) Counters.fields)
    | Control.Checkpoint ->
      Durable_node.checkpoint t.durable;
      Control.Ack
    | Control.Quit ->
      t.quit <- true;
      Control.Ack
  in
  let (_ : (unit, string) result) =
    T.send conn (Transport.Record.control (Control.encode_reply reply))
  in
  ()

let handle_server_record t conn record =
  match Transport.Record.classify record with
  | Error _ -> ()
  | Ok (Transport.Record.Control payload) -> handle_control t conn payload
  | Ok (Transport.Record.Frame frame) ->
    let peer = T.peer conn in
    (* The peer cache is indexed by the fixed dimension; frames from
       outside it (control clients, confused peers) are dropped. *)
    if peer >= 0 && peer < t.config.Config.n && peer <> t.config.Config.id then (
      match
        Transport.serve_frame
          ~apply_push:(fun ~source u ->
            let (_ : [ `Applied | `Stale ]) = Durable_node.apply_push t.durable ~source u in
            ())
          (node t) ~src:peer frame
      with
      | None -> ()
      | Some reply ->
        let (_ : (unit, string) result) =
          T.send conn (Transport.Record.frame reply)
        in
        ())

(* Drain every complete record buffered on [conn]; [`Closed] when the
   connection should be dropped. *)
let drain_conn t conn ~on_record =
  let rec loop () =
    match T.next_record conn with
    | Some record ->
      on_record t conn record;
      loop ()
    | None -> `Open
    | exception Codec.Reader.Corrupt _ -> `Closed
  in
  loop ()

let service_conn t conn ~on_record =
  match T.read_into conn with
  | `Eof | `Error _ ->
    (* Flush what already arrived, then drop the connection. *)
    let (_ : [ `Open | `Closed ]) = drain_conn t conn ~on_record in
    `Closed
  | `Data -> drain_conn t conn ~on_record

let create config =
  let { Config.id; n; dir; listen; peers; push; seed; _ } = config in
  match Durable_node.open_or_create ~dir ~id ~n () with
  | Error _ as e -> e
  | Ok (durable, _replay) -> (
    match T.create ~listen ~id ~peers () with
    | Error _ as e ->
      Durable_node.close durable;
      e
    | Ok transport ->
      let now = Unix.gettimeofday () in
      let channel = Option.map (fun c -> Channel.create ~config:c (Durable_node.node durable)) push in
      Ok
        {
          config;
          durable;
          transport;
          channel;
          prng = Prng.create ~seed:(seed + id);
          started = now;
          conns = [];
          session = None;
          (* Stagger first rounds so an N-process boot doesn't dial in
             lockstep. *)
          next_ae = now +. (config.Config.ae_period *. (1.0 +. (float_of_int id /. float_of_int n)));
          next_push =
            (match push with Some c -> now +. c.Channel.flush_period | None -> infinity);
          quit = false;
        })

let listen_addr t = T.listen_addr t.transport

let step t =
  let now = Unix.gettimeofday () in
  (* Timers first: they may start or fail sessions, changing the fd
     set select should watch. *)
  (match t.session with
  | Some s when s.sconn = None && s.retry_at > 0.0 && now >= s.retry_at -> dial_session t s
  | Some s when s.sconn <> None && now >= s.deadline -> session_attempt_failed t s
  | _ -> ());
  if now >= t.next_ae then begin
    t.next_ae <- now +. t.config.Config.ae_period;
    if t.config.Config.n > 1 then start_session t ~peer:(random_peer t)
  end;
  if now >= t.next_push then begin
    (match t.channel with
    | Some c -> t.next_push <- now +. (Channel.config c).Channel.flush_period
    | None -> t.next_push <- infinity);
    flush_push t
  end;
  if t.config.Config.checkpoint_every > 0
     && Durable_node.journal_records t.durable >= t.config.Config.checkpoint_every
  then Durable_node.checkpoint t.durable;
  (match t.config.Config.max_runtime with
  | Some limit when now -. t.started >= limit -> t.quit <- true
  | _ -> ());
  if t.quit then ()
  else begin
    let next_timer =
      List.fold_left min t.next_ae
        [
          t.next_push;
          (match t.session with
          | Some s when s.sconn <> None -> s.deadline
          | Some s when s.retry_at > 0.0 -> s.retry_at
          | _ -> infinity);
        ]
    in
    let wait = Float.max 0.0 (Float.min 0.25 (next_timer -. now)) in
    let server_fds = List.map T.fd t.conns in
    let session_fd =
      match t.session with Some { sconn = Some c; _ } -> [ T.fd c ] | _ -> []
    in
    let listen_fds = match T.listen_fd t.transport with Some fd -> [ fd ] | None -> [] in
    let readable, _, _ =
      try Unix.select (listen_fds @ server_fds @ session_fd) [] [] wait
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let is_readable fd = List.memq fd readable in
    (match T.listen_fd t.transport with
    | Some lfd when is_readable lfd -> (
      match T.accept ~timeout:0.0 t.transport with
      | Ok conn -> t.conns <- conn :: t.conns
      | Error _ -> ())
    | _ -> ());
    t.conns <-
      List.filter
        (fun conn ->
          if not (is_readable (T.fd conn)) then true
          else
            match service_conn t conn ~on_record:handle_server_record with
            | `Open -> true
            | `Closed ->
              T.close_conn conn;
              false)
        t.conns;
    match t.session with
    | Some ({ sconn = Some conn; _ } as s) when is_readable (T.fd conn) -> (
      let on_record t _conn record =
        match Transport.Record.classify record with
        | Ok (Transport.Record.Frame frame) -> (
          (* [session_reply] may close the connection; further buffered
             records on it are duplicates and drop with it. *)
          match t.session with
          | Some s' when s' == s && s'.sconn <> None -> session_reply t s frame
          | _ -> ())
        | Ok (Transport.Record.Control _) | Error _ -> ()
      in
      match service_conn t conn ~on_record with
      | `Open -> ()
      | `Closed -> (
        match t.session with
        | Some s' when s' == s && s'.sconn <> None -> session_attempt_failed t s
        | _ -> ()))
    | _ -> ()
  end

let shutdown t =
  session_done t;
  List.iter T.close_conn t.conns;
  t.conns <- [];
  (match t.channel with Some c -> Channel.detach c | None -> ());
  T.close t.transport;
  Durable_node.close t.durable

let serve config =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match create config with
  | Error _ as e -> e
  | Ok t ->
    let finally () = shutdown t in
    Fun.protect ~finally (fun () ->
        while not t.quit do
          step t
        done);
    Ok ()

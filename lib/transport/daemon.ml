module Node = Edb_core.Node
module Message = Edb_core.Message
module Counters = Edb_metrics.Counters
module Operation = Edb_store.Operation
module Prng = Edb_util.Prng
module Frame = Edb_persist.Frame
module Codec = Edb_persist.Codec
module Wire = Edb_persist.Wire
module Snapshot = Edb_persist.Snapshot
module Durable_node = Edb_persist.Durable_node
module Channel = Edb_push.Channel
module T = Socket_transport

(* One protocol node as a process: a {!Durable_node} (WAL + checkpoint)
   served over a {!Socket_transport} select loop. The daemon is both
   sides of the protocol at once — it answers inbound requests and
   pushes, and runs its own anti-entropy timer as the initiator — and
   nothing in the loop may block: up to [max_sessions] initiator
   sessions are in flight at once (a table of per-peer state machines,
   each just another fd in the select set with its reply deadline and
   backoff handled as timers), every connection is non-blocking with a
   per-connection output buffer (writable-fd interest, partial-write
   resumption), and the WAL group-commits once per loop turn — no
   record buffered for a peer is released to the wire before the batch
   holding its commit record is durable. The timeout/retry arithmetic
   is the shared {!Transport.Flow}; the counter charges are the shared
   {!Transport.Charge}. *)

module Config = struct
  type t = {
    id : int;
    n : int;
    dir : string;
    listen : T.addr;
    peers : (int * T.addr) list;
    ae_period : float;
    retry : Transport.retry_policy;
    push : Channel.config option;
    seed : int;
    checkpoint_every : int;
    max_runtime : float option;
    max_sessions : int;
  }

  let make ?(ae_period = 0.05) ?(retry = { Transport.default_retry_policy with timeout = 0.5 })
      ?push ?(seed = 1) ?(checkpoint_every = 0) ?max_runtime ?(max_sessions = 4) ~id ~n
      ~dir ~listen ~peers () =
    {
      id;
      n;
      dir;
      listen;
      peers;
      ae_period;
      retry;
      push;
      seed;
      checkpoint_every;
      max_runtime;
      max_sessions = max 1 max_sessions;
    }
end

(* The client-facing control protocol, one {!Codec} envelope per
   record behind the ['C'] tag: how the harness (and `edb_cli cluster`)
   drives updates, reads state, and shuts a daemon down. *)
module Control = struct
  type request =
    | Ping
    | Update of { item : string; op : Operation.t }
    | Read of { item : string }
    | Export
    | Counters_req
    | Checkpoint
    | Quit

  type reply =
    | Ack
    | Value of string option
    | State of string
    | Stats of (string * int) list
    | Failed of string

  let encode_request r =
    Codec.Writer.with_scratch (fun w ->
        (match r with
        | Ping -> Codec.Writer.byte w 0
        | Update { item; op } ->
          Codec.Writer.byte w 1;
          Codec.Writer.string w item;
          Wire.encode_operation w op
        | Read { item } ->
          Codec.Writer.byte w 2;
          Codec.Writer.string w item
        | Export -> Codec.Writer.byte w 3
        | Counters_req -> Codec.Writer.byte w 4
        | Checkpoint -> Codec.Writer.byte w 5
        | Quit -> Codec.Writer.byte w 6);
        Codec.Writer.contents w)

  let decode_request data =
    let r = Codec.Reader.create data in
    let req =
      match Codec.Reader.byte r with
      | 0 -> Ping
      | 1 ->
        let item = Codec.Reader.string r in
        let op = Wire.decode_operation r in
        Update { item; op }
      | 2 -> Read { item = Codec.Reader.string r }
      | 3 -> Export
      | 4 -> Counters_req
      | 5 -> Checkpoint
      | 6 -> Quit
      | tag -> raise (Codec.Reader.Corrupt (Printf.sprintf "unknown control request %d" tag))
    in
    Codec.Reader.expect_end r;
    req

  let encode_reply r =
    Codec.Writer.with_scratch (fun w ->
        (match r with
        | Ack -> Codec.Writer.byte w 0
        | Value v ->
          Codec.Writer.byte w 1;
          Codec.Writer.bool w (v <> None);
          Codec.Writer.string w (Option.value v ~default:"")
        | State s ->
          Codec.Writer.byte w 2;
          Codec.Writer.string w s
        | Stats fields ->
          Codec.Writer.byte w 3;
          Codec.Writer.list w
            (fun w (name, v) ->
              Codec.Writer.string w name;
              Codec.Writer.int w v)
            fields
        | Failed msg ->
          Codec.Writer.byte w 4;
          Codec.Writer.string w msg);
        Codec.Writer.contents w)

  let decode_reply data =
    let r = Codec.Reader.create data in
    let reply =
      match Codec.Reader.byte r with
      | 0 -> Ack
      | 1 ->
        let present = Codec.Reader.bool r in
        let v = Codec.Reader.string r in
        Value (if present then Some v else None)
      | 2 -> State (Codec.Reader.string r)
      | 3 ->
        Stats
          (Codec.Reader.list r (fun r ->
               let name = Codec.Reader.string r in
               let v = Codec.Reader.int r in
               (name, v)))
      | 4 -> Failed (Codec.Reader.string r)
      | tag -> raise (Codec.Reader.Corrupt (Printf.sprintf "unknown control reply %d" tag))
    in
    Codec.Reader.expect_end r;
    reply
end

(* An initiator-side session state machine, one per peer, at most
   [max_sessions] at a time: either an attempt is in flight (a dialed
   non-blocking connection with a reply deadline) or the session sits
   in its backoff window waiting to re-dial. *)
type session = {
  s_peer : int;
  mutable attempt : int;
  mutable sconn : T.conn option;
  mutable deadline : float;
  mutable retry_at : float;
}

type t = {
  config : Config.t;
  durable : Durable_node.t;
  transport : T.t;
  channel : Channel.t option;
  prng : Prng.t;
  started : float;
  (* Accepted connections: peers' sessions and push streams, control
     clients. Non-blocking; a freshly accepted one is anonymous
     ([T.peer conn = -1]) until its handshake arrives via read. *)
  mutable conns : T.conn list;
  (* In-flight initiator sessions, keyed by peer — the single
     [mutable session : session option] this table replaced is the
     [max_sessions = 1] special case. *)
  sessions : (int, session) Hashtbl.t;
  (* Persistent non-blocking push connections, one per peer dialed on
     first flush: a slow push peer accumulates buffered frames (up to
     the transport's cap) instead of stalling the loop. *)
  push_conns : (int, T.conn) Hashtbl.t;
  mutable next_ae : float;
  mutable next_push : float;
  mutable quit : bool;
}

let node t = Durable_node.node t.durable

let counters t = Node.counters (node t)

let close_session_conn s =
  match s.sconn with
  | Some conn ->
    T.close_conn conn;
    s.sconn <- None
  | None -> ()

let session_done t s =
  close_session_conn s;
  Hashtbl.remove t.sessions s.s_peer

(* A failed attempt — refused dial, send error, reply deadline passed,
   peer closed mid-session, corrupt reply — all funnel here, mirroring
   the simulated transport's single timeout failure mode. *)
let session_attempt_failed t s =
  close_session_conn s;
  let c = counters t in
  c.Counters.timeouts <- c.Counters.timeouts + 1;
  match Transport.Flow.on_timeout t.config.Config.retry ~attempt:s.attempt with
  | Transport.Flow.Abandon ->
    c.Counters.sessions_abandoned <- c.Counters.sessions_abandoned + 1;
    Hashtbl.remove t.sessions s.s_peer
  | Transport.Flow.Retry { attempt; backoff } ->
    c.Counters.retries <- c.Counters.retries + 1;
    s.attempt <- attempt;
    s.deadline <- 0.0;
    s.retry_at <-
      Unix.gettimeofday ()
      +. Transport.Flow.jittered t.config.Config.retry backoff ~u:(Prng.float t.prng 1.0)

let dial_session t s =
  let nd = node t in
  Transport.Charge.dial ~retry:(s.attempt > 0) (counters t);
  s.retry_at <- 0.0;
  (* Non-blocking dial: the handshake and request only enter the
     connection's output buffer here; the loop's flush phase drives
     them out, and a connect still in progress just reports [`Blocked]
     until the kernel finishes it. *)
  match T.dial t.transport ~peer:s.s_peer with
  | Error _ -> session_attempt_failed t s
  | Ok conn -> (
    (* Re-encode per attempt: fresh request id, current vectors. *)
    let frame = Frame.encode_request nd ~dst:s.s_peer in
    Transport.Charge.request nd frame;
    match T.send conn (Transport.Record.frame frame) with
    | Error _ ->
      T.close_conn conn;
      session_attempt_failed t s
    | Ok () ->
      s.sconn <- Some conn;
      s.deadline <- Unix.gettimeofday () +. t.config.Config.retry.Transport.timeout)

let start_session t ~peer =
  if not (Hashtbl.mem t.sessions peer) then begin
    let s = { s_peer = peer; attempt = 0; sconn = None; deadline = 0.0; retry_at = 0.0 } in
    Hashtbl.replace t.sessions peer s;
    dial_session t s
  end

let session_reply t s frame =
  match Frame.decode_reply (node t) ~src:s.s_peer frame with
  | Frame.Nak _ | Frame.Reply (Message.You_are_current, _) -> session_done t s
  | Frame.Reply (reply, _) ->
    Durable_node.accept_reply t.durable ~source:s.s_peer reply;
    session_done t s
  | exception Codec.Reader.Corrupt _ -> session_attempt_failed t s

let session_capacity t = min t.config.Config.max_sessions (t.config.Config.n - 1)

(* Each anti-entropy tick tops the session table up to capacity with
   uniformly chosen distinct peers that are not already in-session —
   with [max_sessions = 1] this is exactly the old one-random-peer
   tick. *)
let top_up_sessions t =
  let cap = session_capacity t in
  let active = Hashtbl.length t.sessions in
  if cap > active then begin
    let free = ref [] in
    for p = t.config.Config.n - 1 downto 0 do
      if p <> t.config.Config.id && not (Hashtbl.mem t.sessions p) then free := p :: !free
    done;
    let free = Array.of_list !free in
    let avail = Array.length free in
    let need = min (cap - active) avail in
    for k = 0 to need - 1 do
      let j = k + Prng.int t.prng (avail - k) in
      let picked = free.(j) in
      free.(j) <- free.(k);
      free.(k) <- picked;
      start_session t ~peer:picked
    done
  end

let drop_push_conn t dst conn =
  T.close_conn conn;
  Hashtbl.remove t.push_conns dst

let push_conn t dst =
  match Hashtbl.find_opt t.push_conns dst with
  | Some conn -> Some conn
  | None -> (
    Transport.Charge.dial (counters t);
    match T.dial t.transport ~peer:dst with
    | Error _ -> None
    | Ok conn ->
      Hashtbl.replace t.push_conns dst conn;
      Some conn)

let flush_push t =
  match t.channel with
  | None -> ()
  | Some channel ->
    let nd = node t in
    List.iter
      (fun (dst, updates) ->
        let frame = Frame.encode_push nd ~dst updates in
        Transport.Charge.push nd ~updates frame;
        (* Best effort end to end: a refused dial, a dead stream or an
           overflowing buffer is a lost push frame, repaired by
           anti-entropy. *)
        match push_conn t dst with
        | None -> ()
        | Some conn -> (
          match T.send conn (Transport.Record.frame frame) with
          | Ok () -> ()
          | Error _ -> drop_push_conn t dst conn))
      (Channel.flush channel ~ready:(fun peer -> Frame.push_ready nd ~dst:peer))

let handle_control t conn payload =
  let reply =
    match Control.decode_request payload with
    | exception Codec.Reader.Corrupt msg -> Control.Failed ("bad control request: " ^ msg)
    | Control.Ping -> Control.Ack
    | Control.Update { item; op } ->
      Durable_node.update t.durable item op;
      Control.Ack
    | Control.Read { item } -> Control.Value (Node.read (node t) item)
    | Control.Export -> Control.State (Snapshot.encode (node t))
    | Control.Counters_req ->
      let c = counters t in
      Control.Stats (List.map (fun (name, get) -> (name, get c)) Counters.fields)
    | Control.Checkpoint ->
      Durable_node.checkpoint t.durable;
      Control.Ack
    | Control.Quit ->
      t.quit <- true;
      Control.Ack
  in
  let (_ : (unit, string) result) =
    T.send conn (Transport.Record.control (Control.encode_reply reply))
  in
  ()

let handle_server_record t conn record =
  match Transport.Record.classify record with
  | Error _ -> ()
  | Ok (Transport.Record.Control payload) -> handle_control t conn payload
  | Ok (Transport.Record.Frame frame) ->
    let peer = T.peer conn in
    (* The peer cache is indexed by the fixed dimension; frames from
       outside it (control clients, confused peers) are dropped. *)
    if peer >= 0 && peer < t.config.Config.n && peer <> t.config.Config.id then (
      match
        Transport.serve_frame
          ~apply_push:(fun ~source u ->
            let (_ : [ `Applied | `Stale ]) = Durable_node.apply_push t.durable ~source u in
            ())
          (node t) ~src:peer frame
      with
      | None -> ()
      | Some reply ->
        let (_ : (unit, string) result) =
          T.send conn (Transport.Record.frame reply)
        in
        ())

(* Drain every complete record buffered on [conn]; [`Closed] when the
   connection should be dropped. *)
let drain_conn t conn ~on_record =
  let rec loop () =
    match T.next_record conn with
    | Some record ->
      on_record t conn record;
      loop ()
    | None -> `Open
    | exception Codec.Reader.Corrupt _ -> `Closed
  in
  loop ()

let service_conn t conn ~on_record =
  match T.read_into conn with
  | `Eof | `Error _ ->
    (* Flush what already arrived, then drop the connection. *)
    let (_ : [ `Open | `Closed ]) = drain_conn t conn ~on_record in
    `Closed
  | `Data -> drain_conn t conn ~on_record

let create config =
  let { Config.id; n; dir; listen; peers; push; seed; _ } = config in
  match Durable_node.open_or_create ~dir ~id ~n () with
  | Error _ as e -> e
  | Ok (durable, _replay) -> (
    match T.create ~listen ~id ~peers () with
    | Error _ as e ->
      Durable_node.close durable;
      e
    | Ok transport ->
      let now = Unix.gettimeofday () in
      let channel = Option.map (fun c -> Channel.create ~config:c (Durable_node.node durable)) push in
      (* Group commit: handlers journal with the batch open, one WAL
         flush per loop turn releases it (see [finalize_turn]). *)
      Durable_node.set_group_commit durable true;
      Ok
        {
          config;
          durable;
          transport;
          channel;
          prng = Prng.create ~seed:(seed + id);
          started = now;
          conns = [];
          sessions = Hashtbl.create 8;
          push_conns = Hashtbl.create 8;
          (* Stagger first rounds so an N-process boot doesn't dial in
             lockstep. *)
          next_ae = now +. (config.Config.ae_period *. (1.0 +. (float_of_int id /. float_of_int n)));
          next_push =
            (match push with Some c -> now +. c.Channel.flush_period | None -> infinity);
          quit = false;
        })

let listen_addr t = T.listen_addr t.transport

let all_sessions t = Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []

(* The turn's closing barrier, in this order: one WAL flush commits
   every record the turn's handlers journaled (group commit), and only
   then is any buffered output released to the wire — so no reply, ack
   or push ever reaches a peer before the batch holding its commit
   record is durable. A write error on flush is the connection's
   failure point: sessions funnel it through the retry machinery,
   server and push connections are dropped. *)
let finalize_turn t =
  Durable_node.sync t.durable;
  t.conns <-
    List.filter
      (fun conn ->
        (not (T.want_write conn))
        ||
        match T.flush_output conn with
        | `Drained | `Blocked -> true
        | `Error _ ->
          T.close_conn conn;
          false)
      t.conns;
  List.iter
    (fun s ->
      match s.sconn with
      | Some conn when T.want_write conn -> (
        match T.flush_output conn with
        | `Drained | `Blocked -> ()
        | `Error _ -> session_attempt_failed t s)
      | _ -> ())
    (all_sessions t);
  let dead_push =
    Hashtbl.fold
      (fun dst conn acc ->
        if not (T.want_write conn) then acc
        else
          match T.flush_output conn with
          | `Drained | `Blocked -> acc
          | `Error _ -> (dst, conn) :: acc)
      t.push_conns []
  in
  List.iter (fun (dst, conn) -> drop_push_conn t dst conn) dead_push

let step t =
  let now = Unix.gettimeofday () in
  (* Timers first: they may start or fail sessions, changing the fd
     set select should watch. *)
  List.iter
    (fun s ->
      if Hashtbl.mem t.sessions s.s_peer then
        if s.sconn = None && s.retry_at > 0.0 && now >= s.retry_at then dial_session t s
        else if s.sconn <> None && now >= s.deadline then session_attempt_failed t s)
    (all_sessions t);
  if now >= t.next_ae then begin
    t.next_ae <- now +. t.config.Config.ae_period;
    if t.config.Config.n > 1 then top_up_sessions t
  end;
  if now >= t.next_push then begin
    (match t.channel with
    | Some c -> t.next_push <- now +. (Channel.config c).Channel.flush_period
    | None -> t.next_push <- infinity);
    flush_push t
  end;
  if t.config.Config.checkpoint_every > 0
     && Durable_node.journal_records t.durable >= t.config.Config.checkpoint_every
  then Durable_node.checkpoint t.durable;
  (match t.config.Config.max_runtime with
  | Some limit when now -. t.started >= limit -> t.quit <- true
  | _ -> ());
  if t.quit then finalize_turn t
  else begin
    let next_timer =
      Hashtbl.fold
        (fun _ s acc ->
          min acc
            (if s.sconn <> None then s.deadline
             else if s.retry_at > 0.0 then s.retry_at
             else infinity))
        t.sessions
        (min t.next_ae t.next_push)
    in
    let wait = Float.max 0.0 (Float.min 0.25 (next_timer -. now)) in
    let session_conns =
      Hashtbl.fold
        (fun _ s acc -> match s.sconn with Some c -> (s, c) :: acc | None -> acc)
        t.sessions []
    in
    let push_streams = Hashtbl.fold (fun dst c acc -> (dst, c) :: acc) t.push_conns [] in
    let listen_fds = match T.listen_fd t.transport with Some fd -> [ fd ] | None -> [] in
    let read_fds =
      listen_fds @ List.map T.fd t.conns
      @ List.map (fun (_, c) -> T.fd c) session_conns
      @ List.map (fun (_, c) -> T.fd c) push_streams
    in
    (* Writable interest only where output is actually pending — a
       connection with a drained buffer costs select nothing. *)
    let write_interest conns = List.filter_map (fun c -> if T.want_write c then Some (T.fd c) else None) conns in
    let write_fds =
      write_interest t.conns
      @ write_interest (List.map snd session_conns)
      @ write_interest (List.map snd push_streams)
    in
    let readable, _, _ =
      try Unix.select read_fds write_fds [] wait
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let is_readable fd = List.memq fd readable in
    (match T.listen_fd t.transport with
    | Some lfd when is_readable lfd ->
      let rec accept_loop () =
        match T.accept_nonblocking t.transport with
        | Ok (Some conn) ->
          t.conns <- conn :: t.conns;
          accept_loop ()
        | Ok None | Error _ -> ()
      in
      accept_loop ()
    | _ -> ());
    t.conns <-
      List.filter
        (fun conn ->
          if not (is_readable (T.fd conn)) then true
          else
            match service_conn t conn ~on_record:handle_server_record with
            | `Open -> true
            | `Closed ->
              T.close_conn conn;
              false)
        t.conns;
    List.iter
      (fun (s, conn) ->
        if is_readable (T.fd conn) then begin
          let on_record t _conn record =
            match Transport.Record.classify record with
            | Ok (Transport.Record.Frame frame) -> (
              (* [session_reply] may close the connection; further
                 buffered records on it are duplicates and drop with
                 it. *)
              match Hashtbl.find_opt t.sessions s.s_peer with
              | Some s' when s' == s && s'.sconn <> None -> session_reply t s frame
              | _ -> ())
            | Ok (Transport.Record.Control _) | Error _ -> ()
          in
          match service_conn t conn ~on_record with
          | `Open -> ()
          | `Closed -> (
            match Hashtbl.find_opt t.sessions s.s_peer with
            | Some s' when s' == s && s'.sconn <> None -> session_attempt_failed t s
            | _ -> ())
        end)
      session_conns;
    (* Push streams are write-only; a readable one is the peer closing
       (or resetting) it. *)
    List.iter
      (fun (dst, conn) ->
        if is_readable (T.fd conn) then
          match T.read_into conn with
          | `Eof | `Error _ -> drop_push_conn t dst conn
          | `Data -> ())
      push_streams;
    finalize_turn t
  end

let shutdown t =
  (* Give pending output — typically the ack to the Quit that got us
     here — a brief, bounded chance to drain. *)
  let deadline = Unix.gettimeofday () +. 0.2 in
  let rec drain () =
    let pending = List.filter T.want_write t.conns in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      (try ignore (Unix.select [] (List.map T.fd pending) [] 0.05)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      List.iter
        (fun conn -> ignore (T.flush_output conn : [ `Drained | `Blocked | `Error of string ]))
        pending;
      drain ()
    end
  in
  drain ();
  List.iter (fun s -> close_session_conn s) (all_sessions t);
  Hashtbl.reset t.sessions;
  List.iter T.close_conn t.conns;
  t.conns <- [];
  Hashtbl.iter (fun _ conn -> T.close_conn conn) t.push_conns;
  Hashtbl.reset t.push_conns;
  (match t.channel with Some c -> Channel.detach c | None -> ());
  T.close t.transport;
  Durable_node.close t.durable

let serve config =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match create config with
  | Error _ as e -> e
  | Ok t ->
    let finally () = shutdown t in
    Fun.protect ~finally (fun () ->
        while not t.quit do
          step t
        done);
    Ok ()

(** {!Transport.S} over real sockets — Unix-domain first, TCP second.

    A connection is a byte stream carrying length-prefixed records
    ({!Edb_persist.Frame.to_wire}); receive reassembles through the
    incremental {!Edb_persist.Frame.Reader}, so partial reads, short
    writes and records split at any byte boundary are invisible to
    callers. Connects send an 8-byte handshake (magic + little-endian
    node id) so the passive side learns the peer identity its per-peer
    wire negotiation state is keyed on.

    Callers that multiplex many connections in a select loop (the
    daemon) use the non-blocking surface — {!listen_fd}, {!fd},
    {!read_into}, {!next_record} — instead of blocking {!recv}.

    Writers should ignore [SIGPIPE] (the daemon and harness do) so a
    send to a dead peer surfaces as an [Error], not a process kill. *)

type addr = Unix_path of string | Tcp of { host : string; port : int }

val addr_to_string : addr -> string
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val addr_of_string : string -> (addr, string) result

type t

type conn

val create :
  ?listen:addr -> id:int -> peers:(int * addr) list -> unit -> (t, string) result
(** An endpoint for node [id] that can dial every peer in [peers] and,
    when [listen] is given, accept inbound connections there (an
    existing Unix-socket path is replaced; TCP port [0] lets the
    kernel choose — read {!listen_addr} back). *)

val listen_addr : t -> addr option
(** The bound address, with the kernel-chosen port filled in. *)

val close : t -> unit
(** Close the listening socket and unlink its Unix path. Established
    connections are closed individually ({!close_conn}). *)

include Transport.S with type t := t and type conn := conn

val accept : ?timeout:float -> t -> (conn, string) result
(** Accept one inbound connection and read its handshake; [Error] on
    timeout (when given), a malformed handshake, or a peer that stalls
    mid-handshake. *)

(** {1 Select-loop surface} *)

val listen_fd : t -> Unix.file_descr option

val fd : conn -> Unix.file_descr

val read_into : conn -> [ `Data | `Eof | `Error of string ]
(** One [read(2)] into the connection's reassembly reader — call when
    select reports the fd readable, then drain {!next_record}. *)

val next_record : conn -> string option
(** The next complete buffered record, if any. Raises
    {!Edb_persist.Codec.Reader.Corrupt} on an unrecoverable stream. *)

(** {1 Non-blocking surface}

    The daemon's event loop never blocks on a peer: connects are
    initiated with {!dial} (handshake queued, not written), inbound
    connections arrive through {!accept_nonblocking} with the
    handshake deferred to {!read_into}, and every write goes through a
    per-connection output buffer — {!send} on such a connection only
    appends (coalescing any number of records), and {!flush_output}
    pushes bytes when select reports the fd writable, resuming
    mid-record after a partial write. *)

val dial : t -> peer:int -> (conn, string) result
(** Open a non-blocking connection to [peer]: the connect is issued
    without waiting (a connect-in-progress is success-so-far; late
    failures surface from the first {!flush_output} or {!read_into})
    and the outbound handshake is queued in the output buffer. *)

val accept_nonblocking : t -> (conn option, string) result
(** Accept one pending inbound connection without blocking ([Ok None]
    when there is none). The returned connection reports
    [{!peer} conn = -1] until its 8-byte handshake has been consumed by
    {!read_into} — check {!handshake_done} before trusting the id. *)

val handshake_done : conn -> bool
(** Whether the inbound handshake has completed (always true for dialed
    and blocking-accepted connections). *)

val pending_output : conn -> int
(** Bytes buffered but not yet written. *)

val want_write : conn -> bool
(** [pending_output conn > 0] — whether the event loop should watch
    this fd for writability. *)

val flush_output : conn -> [ `Drained | `Blocked | `Error of string ]
(** Write as much pending output as the socket accepts. [`Blocked]
    means the socket would block (or the connect is still in
    progress) — retry when select reports the fd writable; the unsent
    suffix, possibly starting mid-record, is kept. Sends on a
    non-blocking connection past an 8 MiB backlog fail instead of
    growing the buffer without bound. *)

(** Deterministic failpoint injection.

    Production code declares named injection points with {!hit};
    tests arm them with {!register} (or the scoped {!with_point}) and
    choose when they fire — on the k-th hit, from the k-th hit on, with
    a seeded-PRNG probability, or by arbitrary predicate — and what
    they do: raise {!Injected} (modelling a crash at that instruction)
    or run a callback (torn writes, latency, etc.).

    The catalog of points compiled into the tree is documented in
    DESIGN.md ("Failure model & recovery guarantees").

    {b Cost when disabled.} The registry is globally off by default and
    [hit] is one mutable load and one branch then — cheap enough for
    the steady-state pull path (guarded by the e12 microbench). Nothing
    is allocated and no hashtable is touched until a test calls
    {!register}, which flips the global switch on. *)

exception Injected of string
(** Raised by a fired point whose action is [Raise]; carries the point
    name. Models a crash: the caller's in-memory state is abandoned
    wherever the mutation stood. *)

type trigger =
  | Always
  | On_hit of int  (** Fire on exactly the k-th hit (1-based). *)
  | From_hit of int  (** Fire on every hit from the k-th on. *)
  | Probability of float
      (** Fire with probability p per hit, drawn from the registry's
          seeded PRNG ({!seed_prng}) for deterministic replay. *)
  | Predicate of (int -> bool)  (** Decide from the 1-based hit count. *)

type action = Raise | Call of (unit -> unit)

val hit : string -> unit
(** [hit name] does nothing unless the registry is enabled and [name]
    is registered; then it counts the hit and fires the point's action
    if the trigger says so. *)

val active : string -> bool
(** [active name] is whether the registry is enabled {e and} [name] is
    armed — for code that must do preparatory work only under
    injection (e.g. flush a buffer so a torn write is observable). *)

val register : ?trigger:trigger -> ?action:action -> string -> unit
(** Arm a point (default: fire [Always], action [Raise]) and enable
    the registry. *)

val unregister : string -> unit

val with_point :
  ?trigger:trigger -> ?action:action -> string -> (unit -> 'a) -> 'a
(** [with_point name f] arms [name] around [f] and disarms it however
    [f] exits, disabling the registry again if no points remain. *)

val enabled : unit -> bool

val enable : unit -> unit

val disable : unit -> unit

val seed_prng : int -> unit
(** Reseed the registry PRNG used by [Probability] triggers. *)

val clear : unit -> unit
(** Drop every registered point and disable the registry. *)

val hits : string -> int
(** Times an armed point was reached (0 if unregistered). *)

val fired : string -> int
(** Times an armed point's action ran (0 if unregistered). *)

(* Failpoint registry: named injection points that production code
   declares with [hit] and tests arm with [register].

   Design constraints, in order of importance:

   1. Free when off. Every [hit] on a hot path must cost one mutable
      load and one predictable branch when the registry is globally
      disabled — the e12 idle-pull microbench guards this. Hence the
      split into an inlined [hit] testing [enabled_flag] and a cold
      [slow_hit] that does the table lookup.

   2. Deterministic. PRNG-triggered points draw from a seeded
      splitmix64 generator owned by the registry, never the stdlib
      [Random], so a fault schedule replays exactly from its seed.

   3. Composable with recovery tests. The default action raises
      [Injected], which models a crash at the instrumented instruction:
      the caller's in-memory state is abandoned mid-mutation and the
      test reopens from disk. Custom actions cover everything else
      (torn writes need a flush first; see [Wal.append]). *)

module Prng = Edb_util.Prng

exception Injected of string

type trigger =
  | Always
  | On_hit of int  (** Fire on exactly the k-th hit (1-based). *)
  | From_hit of int  (** Fire on every hit from the k-th on (1-based). *)
  | Probability of float  (** Fire with probability p per hit. *)
  | Predicate of (int -> bool)  (** Decide from the 1-based hit count. *)

type action = Raise | Call of (unit -> unit)

type point = {
  trigger : trigger;
  action : action;
  mutable hits : int;  (** Times this point was reached while armed. *)
  mutable fired : int;  (** Times the action actually ran. *)
}

let enabled_flag = ref false

let points : (string, point) Hashtbl.t = Hashtbl.create 8

(* Registry-owned randomness for [Probability] triggers. *)
let prng = ref (Prng.create ~seed:0)

let enabled () = !enabled_flag

let enable () = enabled_flag := true

let disable () = enabled_flag := false

let seed_prng seed = prng := Prng.create ~seed

let clear () =
  Hashtbl.reset points;
  enabled_flag := false

let register ?(trigger = Always) ?(action = Raise) name =
  Hashtbl.replace points name { trigger; action; hits = 0; fired = 0 };
  enabled_flag := true

let unregister name = Hashtbl.remove points name

let hits name =
  match Hashtbl.find_opt points name with Some p -> p.hits | None -> 0

let fired name =
  match Hashtbl.find_opt points name with Some p -> p.fired | None -> 0

let should_fire p =
  match p.trigger with
  | Always -> true
  | On_hit k -> p.hits = k
  | From_hit k -> p.hits >= k
  | Probability q -> Prng.chance !prng q
  | Predicate f -> f p.hits

(* Out of line on purpose: [hit] below must stay small enough to
   inline to a load + branch. *)
let[@inline never] slow_hit name =
  match Hashtbl.find_opt points name with
  | None -> ()
  | Some p ->
    p.hits <- p.hits + 1;
    if should_fire p then begin
      p.fired <- p.fired + 1;
      match p.action with Raise -> raise (Injected name) | Call f -> f ()
    end

let[@inline] hit name = if !enabled_flag then slow_hit name

let active name = !enabled_flag && Hashtbl.mem points name

(* Arm a point, run [f], and disarm no matter how [f] exits — the
   pattern every recovery test wants. The registry is left disabled
   iff no other points remain armed. *)
let with_point ?trigger ?action name f =
  register ?trigger ?action name;
  Fun.protect
    ~finally:(fun () ->
      unregister name;
      if Hashtbl.length points = 0 then enabled_flag := false)
    f

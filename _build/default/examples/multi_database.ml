(* Multiple databases, one server fleet (paper §2).

   "When the system maintains multiple databases, a separate instance
   of the protocol runs for each database." Each database keeps its own
   DBVVs, logs and schedule: the busy CRM syncs every round, the
   archive once a day, and neither pays anything for the other. One
   server is checkpointed and crash-restored across all its databases.

   Run with: dune exec examples/multi_database.exe *)

module Group = Edb_server.Server_group
module Operation = Edb_store.Operation

let ok = function Ok v -> v | Error msg -> failwith msg

let dir = Filename.concat (Filename.get_temp_dir_name ()) "edb-group-example"

let clean () =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let () =
  clean ();
  let group = Group.create ~n:3 () in
  ok (Group.create_database group "crm");
  ok (Group.create_database group "archive");
  Printf.printf "3 servers hosting databases: %s\n\n"
    (String.concat ", " (Group.databases group));

  print_endline "Busy CRM traffic + one archive write:";
  ok (Group.update group ~db:"crm" ~node:0 ~item:"lead-17" (Operation.Set "call back"));
  ok (Group.update group ~db:"crm" ~node:1 ~item:"lead-23" (Operation.Set "closed!"));
  ok (Group.update group ~db:"archive" ~node:0 ~item:"2025-q4" (Operation.Set "frozen"));

  print_endline "The CRM syncs aggressively (its own anti-entropy schedule):";
  let rounds = ok (Group.sync_database group ~db:"crm") in
  Printf.printf "  crm converged in %d round(s); archive still lagging: %b\n" rounds
    (not (Group.converged group));

  print_endline "\nCheckpoint server 2 across ALL its databases:";
  ok (Group.save_server group ~dir ~node:2);
  Printf.printf "  wrote %s/{MANIFEST, db-*.snap}\n" dir;

  print_endline "\nNightly archive sync, then more CRM churn:";
  let (_ : (string * int) list) = Group.sync_all group in
  ok (Group.update group ~db:"crm" ~node:0 ~item:"lead-17" (Operation.Set "won"));
  let (_ : (string * int) list) = Group.sync_all group in

  print_endline "Server 2 crashes; restore it from the checkpoint:";
  ok (Group.restore_server group ~dir ~node:2);
  Printf.printf "  server 2 crm lead-17 after restore: %S (stale, as checkpointed)\n"
    (Option.value ~default:""
       (ok (Group.read group ~db:"crm" ~node:2 ~item:"lead-17")));

  print_endline "\nOrdinary anti-entropy re-integrates it, database by database:";
  List.iter
    (fun (db, rounds) -> Printf.printf "  %-8s converged in %d round(s)\n" db rounds)
    (Group.sync_all group);
  Printf.printf "  server 2 crm lead-17 now: %S\n"
    (Option.value ~default:""
       (ok (Group.read group ~db:"crm" ~node:2 ~item:"lead-17")));
  Printf.printf "  whole group converged: %b\n" (Group.converged group);
  clean ()

(* Dial-up synchronization with out-of-bound fetches — the paper's
   motivating deployment (§1): a laptop replica synchronizes with the
   office server only during periodic dial-up sessions, but the user can
   pull one hot document immediately at any time, out of bound, without
   waiting for the next scheduled propagation.

   Run with: dune exec examples/dialup_sync.exe *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Workload = Edb_workload.Workload

let office = 0

let laptop = 1

let () =
  let cluster = Cluster.create ~seed:7 ~n:2 () in

  print_endline "Seeding the office server with a 1000-document database...";
  for rank = 0 to 999 do
    Cluster.update cluster ~node:office ~item:(Workload.item_name rank)
      (Operation.Set (Workload.payload ~item:(Workload.item_name rank) ~seq:1 ~size:64))
  done;

  print_endline "Evening dial-up: the laptop pulls everything once.";
  ignore (Cluster.pull cluster ~recipient:laptop ~source:office);
  Printf.printf "  laptop now holds %d documents\n\n"
    (Edb_store.Store.size (Node.store (Cluster.node cluster laptop)));

  print_endline "During the day, the office edits 12 documents and the big report:";
  for rank = 0 to 11 do
    Cluster.update cluster ~node:office ~item:(Workload.item_name rank)
      (Operation.Set "daytime edit")
  done;
  Cluster.update cluster ~node:office ~item:"report" (Operation.Set "Q2 draft v1");

  print_endline
    "\nThe user needs the report NOW - out-of-bound fetch of that one item:";
  (match Cluster.fetch_out_of_bound cluster ~recipient:laptop ~source:office "report" with
  | `Adopted -> print_endline "  report fetched out of bound (auxiliary copy created)"
  | `Already_current -> print_endline "  already current"
  | `Conflict -> print_endline "  conflict!");
  Printf.printf "  laptop reads: %S\n"
    (Option.value ~default:"" (Cluster.read cluster ~node:laptop ~item:"report"));

  print_endline "\nThe user annotates the report on the laptop (offline, on the aux copy):";
  Cluster.update cluster ~node:laptop ~item:"report"
    (Operation.Set "Q2 draft v1 + laptop annotations");
  Printf.printf "  pending deferred updates in the auxiliary log: %d\n"
    (Edb_log.Aux_log.length (Node.aux_log (Cluster.node cluster laptop)));

  print_endline "\nNight dial-up: one scheduled anti-entropy session.";
  Cluster.reset_counters cluster;
  (match Cluster.pull cluster ~recipient:laptop ~source:office with
  | Node.Pulled { copied; _ } ->
    Printf.printf "  session copied %d item(s) - only the dirty ones, not 1000\n"
      (List.length copied)
  | Node.Already_current -> print_endline "  already current");
  let total = Cluster.total_counters cluster in
  Printf.printf "  session work: %d (vs ~1000 for per-item anti-entropy)\n"
    (Edb_metrics.Counters.total_work total);
  Printf.printf "  intra-node propagation replayed %d deferred update(s)\n"
    total.aux_replays;
  Printf.printf "  auxiliary copy discarded: %b\n"
    (not (Node.has_aux (Cluster.node cluster laptop) "report"));

  print_endline "\nMorning dial-up: the office pulls the laptop's annotations back.";
  ignore (Cluster.pull cluster ~recipient:office ~source:laptop);
  Printf.printf "  office reads: %S\n"
    (Option.value ~default:"" (Cluster.read cluster ~node:office ~item:"report"));
  Printf.printf "  fully converged: %b\n" (Cluster.converged cluster)

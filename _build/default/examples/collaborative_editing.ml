(* Collaborative editing with tokens and session guarantees.

   Combines the two consistency regimes the paper's §2 system model
   allows on top of epidemic replication:

   - pessimistic: a per-item token serializes updates ("there is a
     unique token associated with every data item, and a replica is
     required to acquire a token before performing any updates");
   - client-side: session guarantees (Terry et al. [14], §8.3) keep a
     roaming client's view coherent even though servers converge lazily.

   Run with: dune exec examples/collaborative_editing.exe *)

module Cluster = Edb_core.Cluster
module Tokens = Edb_tokens.Token_manager
module Session = Edb_sessions.Session
module Operation = Edb_store.Operation

let () =
  let cluster = Cluster.create ~seed:2 ~n:3 () in
  let tokens = Tokens.create cluster in
  let doc = "design-doc" in

  Printf.printf "Document %S, replicated on 3 servers; token home: server %d\n\n" doc
    (Tokens.home tokens doc);

  print_endline "Alice edits on server 0 (token moves there, with the fresh copy):";
  (match Tokens.update tokens ~node:0 ~item:doc (Operation.Set "v1 by alice") with
  | Ok hops -> Printf.printf "  token acquired after %d hop(s); edit applied\n" hops
  | Error (`Cycle _) -> print_endline "  token error");

  print_endline "\nBob edits on server 2 - the token brings him Alice's version first:";
  (match Tokens.update tokens ~node:2 ~item:doc (Operation.Set "v2 by bob") with
  | Ok hops ->
    Printf.printf "  token acquired after %d hop(s)\n" hops;
    Printf.printf "  bob read the freshest copy before editing: no conflict possible\n"
  | Error (`Cycle _) -> print_endline "  token error");

  Printf.printf "\nNo anti-entropy has run yet; server 0 still shows %S\n"
    (Option.value ~default:"" (Cluster.read cluster ~node:0 ~item:doc));

  print_endline "\nAlice's session roams to server 1 (which knows nothing yet):";
  let alice = Session.create cluster in
  (* Re-establish Alice's session state: she wrote v1 at server 0. *)
  (match Session.read alice ~node:0 ~item:doc with
  | Ok _ -> print_endline "  session warm at server 0";
  | Error _ -> ());
  (match Session.read alice ~node:1 ~item:doc with
  | Error (`Violates g) ->
    Format.printf "  server 1 refused: violates %a - retry elsewhere@."
      Session.pp_guarantee g
  | Ok _ -> print_endline "  (server 1 was unexpectedly current)"
  | Error (`Aux_pending _) -> ());

  print_endline "\nAnti-entropy rounds run in the background...";
  let rounds = Cluster.sync_until_converged cluster in
  Printf.printf "  converged in %d round(s)\n" rounds;

  (match Session.read alice ~node:1 ~item:doc with
  | Ok value ->
    Printf.printf "  server 1 now serves Alice: %S\n" (Option.value ~default:"" value)
  | Error _ -> print_endline "  still refused (unexpected)");

  let total = Cluster.total_counters cluster in
  Printf.printf
    "\nEnd state: %d token transfer(s), %d conflict(s) (tokens make races impossible)\n"
    (Tokens.transfers tokens) total.conflicts_detected;
  for node = 0 to 2 do
    Printf.printf "  server %d reads %S\n" node
      (Option.value ~default:"" (Cluster.read cluster ~node ~item:doc))
  done

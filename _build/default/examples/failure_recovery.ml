(* Originator failure during update propagation (paper §8.2).

   Oracle-style push replication ships updates from the originating
   server to everyone else and never forwards. If the originator crashes
   mid-propagation, the nodes it missed stay obsolete until it recovers.
   The epidemic protocol forwards through whoever already has the data,
   so the same crash barely delays convergence.

   Run with: dune exec examples/failure_recovery.exe *)

module Driver = Edb_baselines.Driver
module Oracle = Edb_baselines.Oracle_push
module Engine = Edb_sim.Engine
module Operation = Edb_store.Operation

let n = 10

let reached_before_crash = 3

let () =
  Printf.printf
    "Scenario: %d replicas; the originator updates one item, reaches %d nodes, \
     then crashes.\n\n"
    n reached_before_crash;

  (* ---- Oracle-style push ---- *)
  print_endline "[Oracle Symmetric Replication - push to all, no forwarding]";
  let oracle = Oracle.create ~n in
  Oracle.update oracle ~node:0 ~item:"x" (Operation.Set "v");
  for dst = 1 to reached_before_crash do
    Oracle.push_to oracle ~origin:0 ~dst
  done;
  Oracle.crash oracle ~node:0;
  (* The nodes that have the data push their (empty) queues forever. *)
  for origin = 1 to n - 1 do
    Oracle.push_all oracle ~origin
  done;
  let stale = ref 0 in
  for node = 0 to n - 1 do
    if Oracle.is_stale oracle ~node then incr stale
  done;
  Printf.printf "  after the crash: %d node(s) stuck with the obsolete version\n" !stale;
  Printf.printf "  they stay stale until the originator recovers...\n";
  Oracle.recover oracle ~node:0;
  Oracle.push_all oracle ~origin:0;
  Printf.printf "  after recovery + one push round: converged = %b\n\n"
    (Oracle.converged oracle);

  (* ---- The paper's epidemic protocol ---- *)
  print_endline "[DBVV epidemic protocol - pull-based anti-entropy with forwarding]";
  let _, driver = Edb_baselines.Epidemic_driver.create ~seed:3 ~n () in
  let engine = Engine.create ~seed:4 ~driver () in
  driver.Driver.update ~node:0 ~item:"x" ~op:(Operation.Set "v");
  for dst = 1 to reached_before_crash do
    driver.Driver.session ~src:0 ~dst
  done;
  Engine.schedule engine ~at:0.0 (Engine.Crash 0);
  Engine.schedule engine ~at:0.5
    (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Random_peer });
  (match Engine.run_until_converged engine ~check_every:1.0 ~deadline:500.0 with
  | Some time ->
    Printf.printf
      "  periodic DBVV comparison notices the gap; survivors forward the data\n";
    Printf.printf "  all surviving replicas converged at t = %.0f (period = 1.0)\n" time
  | None -> print_endline "  did not converge (unexpected)");
  for node = n - 3 to n - 1 do
    Printf.printf "  node %d reads %S\n" node
      (Option.value ~default:"<absent>" (driver.Driver.read ~node ~item:"x"))
  done;
  print_endline
    "\nThe price of this resilience is one DBVV comparison per idle session - \
     constant, not O(N)."

examples/conflict_detection.mli:

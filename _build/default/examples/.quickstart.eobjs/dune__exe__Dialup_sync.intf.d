examples/dialup_sync.mli:

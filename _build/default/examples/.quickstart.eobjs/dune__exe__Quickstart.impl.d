examples/quickstart.ml: Edb_core Edb_store Edb_vv List Printf

examples/multi_database.mli:

examples/collaborative_editing.mli:

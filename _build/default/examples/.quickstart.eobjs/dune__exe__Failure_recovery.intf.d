examples/failure_recovery.mli:

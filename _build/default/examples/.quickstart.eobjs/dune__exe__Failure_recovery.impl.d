examples/failure_recovery.ml: Edb_baselines Edb_sim Edb_store Option Printf

examples/dialup_sync.ml: Edb_core Edb_log Edb_metrics Edb_store Edb_workload List Option Printf

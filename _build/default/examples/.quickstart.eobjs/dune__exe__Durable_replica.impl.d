examples/durable_replica.ml: Array Edb_core Edb_persist Edb_store Filename List Option Printf Sys

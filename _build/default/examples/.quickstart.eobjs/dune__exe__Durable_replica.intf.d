examples/durable_replica.mli:

examples/conflict_detection.ml: Edb_baselines Edb_core Edb_store Format Option Printf

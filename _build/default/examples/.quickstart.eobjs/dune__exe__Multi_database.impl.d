examples/multi_database.ml: Array Edb_server Edb_store Filename List Option Printf String Sys

examples/quickstart.mli:

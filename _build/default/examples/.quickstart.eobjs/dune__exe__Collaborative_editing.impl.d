examples/collaborative_editing.ml: Edb_core Edb_sessions Edb_store Edb_tokens Format Option Printf

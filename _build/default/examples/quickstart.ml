(* Quickstart: three replicas, a few updates, anti-entropy, convergence.

   Run with: dune exec examples/quickstart.exe *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector

let show cluster ~item =
  for node = 0 to Cluster.n cluster - 1 do
    Printf.printf "  node %d: %-12s dbvv=%s\n" node
      (match Cluster.read cluster ~node ~item with
      | Some v -> Printf.sprintf "%S" v
      | None -> "<absent>")
      (Vv.to_string (Node.dbvv (Cluster.node cluster node)))
  done

let () =
  (* A database replicated across three servers. *)
  let cluster = Cluster.create ~seed:1 ~n:3 () in

  print_endline "1. Node 0 updates \"motd\" locally (no network traffic):";
  Cluster.update cluster ~node:0 ~item:"motd" (Operation.Set "hello, epidemic world");
  show cluster ~item:"motd";

  print_endline "\n2. Node 1 pulls from node 0 (one anti-entropy session):";
  (match Cluster.pull cluster ~recipient:1 ~source:0 with
  | Node.Pulled { copied; _ } ->
    Printf.printf "  copied %d item(s)\n" (List.length copied)
  | Node.Already_current -> print_endline "  already current");
  show cluster ~item:"motd";

  print_endline "\n3. Node 2 pulls from node 1 - updates travel transitively:";
  ignore (Cluster.pull cluster ~recipient:2 ~source:1);
  show cluster ~item:"motd";

  print_endline
    "\n4. Another session between the (now identical) replicas costs one DBVV \
     comparison:";
  (match Cluster.pull cluster ~recipient:2 ~source:0 with
  | Node.Already_current -> print_endline "  you-are-current, answered in O(1)"
  | Node.Pulled _ -> print_endline "  unexpected propagation");

  print_endline "\n5. More updates, then random anti-entropy rounds until convergence:";
  Cluster.update cluster ~node:1 ~item:"motd" (Operation.Set "updated at node 1");
  Cluster.update cluster ~node:2 ~item:"greeting" (Operation.Set "bonjour");
  let rounds = Cluster.sync_until_converged cluster in
  Printf.printf "  converged after %d random round(s)\n" rounds;
  show cluster ~item:"motd";
  show cluster ~item:"greeting";

  let total = Cluster.total_counters cluster in
  Printf.printf
    "\nTotals: %d updates, %d messages, %d bytes, %d items copied, %d conflicts\n"
    total.updates_applied total.messages total.bytes_sent total.items_copied
    total.conflicts_detected;
  match Cluster.check_invariants cluster with
  | Ok () -> print_endline "All node invariants hold."
  | Error msg -> Printf.printf "INVARIANT VIOLATION: %s\n" msg

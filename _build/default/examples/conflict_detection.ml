(* Exact conflict detection vs Lotus Notes sequence numbers (paper §8.1).

   Two replicas update the same document concurrently. Version vectors
   prove the copies are incomparable and flag the conflict, naming the
   sites that performed the conflicting updates; sequence numbers just
   let the copy with more updates silently win, losing data.

   Run with: dune exec examples/conflict_detection.exe *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Conflict = Edb_core.Conflict
module Lotus = Edb_baselines.Lotus
module Driver = Edb_baselines.Driver
module Operation = Edb_store.Operation

let () =
  print_endline "Concurrent edits: node 0 updates \"doc\" twice, node 1 once.\n";

  (* ---- Lotus Notes sequence numbers ---- *)
  print_endline "[Lotus Notes protocol]";
  let lotus = Lotus.create ~n:2 ~universe:[ "doc" ] in
  Lotus.update lotus ~node:0 ~item:"doc" (Operation.Set "node0 edit A");
  Lotus.update lotus ~node:0 ~item:"doc" (Operation.Set "node0 edit B");
  Lotus.update lotus ~node:1 ~item:"doc" (Operation.Set "node1 edit");
  Printf.printf "  before sync: node1 reads %S (seqno %d)\n"
    (Option.value ~default:"" (Lotus.read lotus ~node:1 ~item:"doc"))
    (Lotus.sequence_number lotus ~node:1 ~item:"doc");
  Lotus.session lotus ~src:0 ~dst:1;
  Printf.printf "  after sync:  node1 reads %S (seqno %d)\n"
    (Option.value ~default:"" (Lotus.read lotus ~node:1 ~item:"doc"))
    (Lotus.sequence_number lotus ~node:1 ~item:"doc");
  let lotus_conflicts =
    ((Lotus.driver lotus).Driver.total_counters ()).conflicts_detected
  in
  Printf.printf "  conflicts reported: %d  ->  node 1's edit is silently LOST\n\n"
    lotus_conflicts;

  (* ---- The paper's protocol ---- *)
  print_endline "[DBVV epidemic protocol]";
  let cluster = Cluster.create ~n:2 () in
  Cluster.update cluster ~node:0 ~item:"doc" (Operation.Set "node0 edit A");
  Cluster.update cluster ~node:0 ~item:"doc" (Operation.Set "node0 edit B");
  Cluster.update cluster ~node:1 ~item:"doc" (Operation.Set "node1 edit");
  (match Cluster.pull cluster ~recipient:1 ~source:0 with
  | Node.Pulled { conflicts; _ } -> Printf.printf "  sync declared %d conflict(s)\n" conflicts
  | Node.Already_current -> print_endline "  unexpected: already current");
  (match Node.conflicts (Cluster.node cluster 1) with
  | conflict :: _ ->
    Format.printf "  report: %a@." Conflict.pp conflict
  | [] -> print_endline "  no conflict recorded (unexpected)");
  Printf.printf "  node0 still reads %S, node1 still reads %S - nothing lost\n\n"
    (Option.value ~default:"" (Cluster.read cluster ~node:0 ~item:"doc"))
    (Option.value ~default:"" (Cluster.read cluster ~node:1 ~item:"doc"));

  (* ---- Automatic resolution as an extension ---- *)
  print_endline "[DBVV + automatic resolution policy (extension)]";
  let resolver ~(local : Edb_core.Message.shipped_item)
      ~(remote : Edb_core.Message.shipped_item) =
    (* Application-specific merge; here: keep both edits, concatenated.
       Resolvers always see Whole payloads. *)
    let value s = Option.value ~default:"" (Edb_core.Message.whole_value s) in
    value local ^ " | " ^ value remote
  in
  let cluster = Cluster.create ~seed:5 ~policy:(Node.Resolve resolver) ~n:2 () in
  Cluster.update cluster ~node:0 ~item:"doc" (Operation.Set "left");
  Cluster.update cluster ~node:1 ~item:"doc" (Operation.Set "right");
  let rounds = Cluster.sync_until_converged cluster in
  Printf.printf "  converged in %d round(s); both replicas read %S\n" rounds
    (Option.value ~default:"" (Cluster.read cluster ~node:0 ~item:"doc"))

(* Tests for op-log ("delta") propagation — the paper §2's alternative
   transport: ship update records instead of whole item values. *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Message = Edb_core.Message
module Operation = Edb_store.Operation
module Item_history = Edb_store.Item_history
module Counters = Edb_metrics.Counters

let set v = Operation.Set v

let splice offset data = Operation.Splice { offset; data }

let oplog ?(depth = 32) () = Node.Op_log { depth }

let expect_ok cluster =
  match Cluster.check_invariants cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

(* ---------- Item history unit tests ---------- *)

let entry origin seq v = { Item_history.origin; seq; op = set v }

let test_history_bounded () =
  let h = Item_history.create ~depth:3 in
  for i = 1 to 5 do
    Item_history.push h (entry 0 i (string_of_int i))
  done;
  Alcotest.(check int) "bounded" 3 (Item_history.length h);
  let seqs = List.map (fun (e : Item_history.entry) -> e.seq) (Item_history.entries h) in
  Alcotest.(check (list int)) "oldest evicted" [ 3; 4; 5 ] seqs

let test_history_oldest_per_origin () =
  let h = Item_history.create ~depth:10 in
  Item_history.push h (entry 0 1 "a");
  Item_history.push h (entry 1 1 "b");
  Item_history.push h (entry 0 3 "c");
  Alcotest.(check (option int)) "origin 0" (Some 1)
    (Item_history.oldest_seq_of_origin h ~origin:0);
  Alcotest.(check (option int)) "origin 1" (Some 1)
    (Item_history.oldest_seq_of_origin h ~origin:1);
  Alcotest.(check (option int)) "origin 2" None
    (Item_history.oldest_seq_of_origin h ~origin:2)

let test_history_entries_after () =
  let h = Item_history.create ~depth:10 in
  Item_history.push h (entry 0 1 "a");
  Item_history.push h (entry 1 1 "b");
  Item_history.push h (entry 0 2 "c");
  let missing = Item_history.entries_after h ~threshold:[| 1; 0 |] in
  let tags = List.map (fun (e : Item_history.entry) -> (e.origin, e.seq)) missing in
  Alcotest.(check (list (pair int int))) "missing suffix in order" [ (1, 1); (0, 2) ] tags

(* ---------- Delta propagation ---------- *)

let test_delta_basic () =
  let cluster = Cluster.create ~mode:(oplog ()) ~n:2 () in
  Cluster.update cluster ~node:0 ~item:"x" (set "base");
  Cluster.update cluster ~node:0 ~item:"x" (splice 0 "B");
  Cluster.update cluster ~node:0 ~item:"x" (splice 4 "!");
  (match Cluster.pull cluster ~recipient:1 ~source:0 with
  | Node.Pulled { copied; conflicts; _ } ->
    Alcotest.(check (list string)) "x copied" [ "x" ] copied;
    Alcotest.(check int) "no conflicts" 0 conflicts
  | Node.Already_current -> Alcotest.fail "expected propagation");
  Alcotest.(check (option string)) "ops replayed to the same value" (Some "Base!")
    (Cluster.read cluster ~node:1 ~item:"x");
  let total = Cluster.total_counters cluster in
  Alcotest.(check int) "three delta ops applied" 3 total.delta_ops_applied;
  Alcotest.(check int) "no whole fallback" 0 total.whole_fallbacks;
  expect_ok cluster

let test_delta_matches_whole_mode () =
  (* The same workload through both transports ends in identical
     states. *)
  let run mode =
    let cluster = Cluster.create ~seed:5 ?mode ~n:3 () in
    Cluster.update cluster ~node:0 ~item:"a" (set "hello world");
    Cluster.update cluster ~node:0 ~item:"a" (splice 6 "WORLD");
    Cluster.update cluster ~node:1 ~item:"b" (set "other");
    ignore (Cluster.sync_until_converged cluster);
    ( Cluster.read cluster ~node:2 ~item:"a",
      Cluster.read cluster ~node:2 ~item:"b" )
  in
  Alcotest.(check (pair (option string) (option string)))
    "identical final state" (run None)
    (run (Some (oplog ())))

let test_delta_transitive_forwarding () =
  (* Ops travel A -> B -> C as deltas: B's history retains A's ops. *)
  let cluster = Cluster.create ~mode:(oplog ()) ~n:3 () in
  Cluster.update cluster ~node:0 ~item:"x" (set "v1");
  Cluster.update cluster ~node:0 ~item:"x" (splice 0 "V");
  ignore (Cluster.pull cluster ~recipient:1 ~source:0);
  Cluster.reset_counters cluster;
  ignore (Cluster.pull cluster ~recipient:2 ~source:1);
  let total = Cluster.total_counters cluster in
  Alcotest.(check int) "forwarded as delta" 2 total.delta_ops_applied;
  Alcotest.(check int) "no fallback" 0 total.whole_fallbacks;
  Alcotest.(check (option string)) "value correct at C" (Some "V1")
    (Cluster.read cluster ~node:2 ~item:"x");
  expect_ok cluster

let test_fallback_when_history_evicted () =
  (* More updates than the history retains: the source must prove it
     cannot delta and fall back to a whole copy. *)
  let cluster = Cluster.create ~mode:(oplog ~depth:4 ()) ~n:2 () in
  for i = 1 to 10 do
    Cluster.update cluster ~node:0 ~item:"x" (set (Printf.sprintf "v%d" i))
  done;
  (match Cluster.pull cluster ~recipient:1 ~source:0 with
  | Node.Pulled _ -> ()
  | Node.Already_current -> Alcotest.fail "expected propagation");
  let total = Cluster.total_counters cluster in
  Alcotest.(check int) "whole fallback taken" 1 total.whole_fallbacks;
  Alcotest.(check int) "no delta ops" 0 total.delta_ops_applied;
  Alcotest.(check (option string)) "value still correct" (Some "v10")
    (Cluster.read cluster ~node:1 ~item:"x");
  expect_ok cluster

let test_delta_within_history_window () =
  (* A recipient that is only slightly behind gets a delta even though
     older ops were evicted. *)
  let cluster = Cluster.create ~mode:(oplog ~depth:4 ()) ~n:2 () in
  for i = 1 to 10 do
    Cluster.update cluster ~node:0 ~item:"x" (set (Printf.sprintf "v%d" i))
  done;
  ignore (Cluster.pull cluster ~recipient:1 ~source:0);
  (* Now only 2 more updates: well within depth 4. *)
  Cluster.update cluster ~node:0 ~item:"x" (set "v11");
  Cluster.update cluster ~node:0 ~item:"x" (set "v12");
  Cluster.reset_counters cluster;
  ignore (Cluster.pull cluster ~recipient:1 ~source:0);
  let total = Cluster.total_counters cluster in
  Alcotest.(check int) "delta this time" 2 total.delta_ops_applied;
  Alcotest.(check int) "no fallback" 0 total.whole_fallbacks;
  Alcotest.(check (option string)) "value" (Some "v12")
    (Cluster.read cluster ~node:1 ~item:"x")

let test_delta_bytes_advantage () =
  (* Large value, small edits: op shipping moves far fewer bytes. *)
  let big = String.make 4096 'a' in
  let run mode =
    let cluster = Cluster.create ?mode ~n:2 () in
    Cluster.update cluster ~node:0 ~item:"doc" (set big);
    ignore (Cluster.pull cluster ~recipient:1 ~source:0);
    (* Ten 8-byte edits. *)
    for i = 0 to 9 do
      Cluster.update cluster ~node:0 ~item:"doc" (splice (i * 100) "EDITEDIT")
    done;
    Cluster.reset_counters cluster;
    ignore (Cluster.pull cluster ~recipient:1 ~source:0);
    let bytes = (Cluster.total_counters cluster).Counters.bytes_sent in
    let value = Cluster.read cluster ~node:1 ~item:"doc" in
    (bytes, value)
  in
  let whole_bytes, whole_value = run None in
  let delta_bytes, delta_value = run (Some (oplog ())) in
  Alcotest.(check (option string)) "same final value" whole_value delta_value;
  Alcotest.(check bool)
    (Printf.sprintf "delta far cheaper (%d vs %d bytes)" delta_bytes whole_bytes)
    true
    (delta_bytes * 4 < whole_bytes)

let test_oplog_conflicts_still_detected () =
  let cluster = Cluster.create ~mode:(oplog ()) ~n:2 () in
  Cluster.update cluster ~node:0 ~item:"x" (set "from-a");
  Cluster.update cluster ~node:1 ~item:"x" (set "from-b");
  (match Cluster.pull cluster ~recipient:1 ~source:0 with
  | Node.Pulled { conflicts; _ } -> Alcotest.(check int) "conflict" 1 conflicts
  | Node.Already_current -> Alcotest.fail "expected a session");
  Alcotest.(check (option string)) "nothing lost" (Some "from-b")
    (Cluster.read cluster ~node:1 ~item:"x")

let test_oplog_with_out_of_bound () =
  (* The aux machinery composes with op-log mode: deferred updates are
     replayed as fresh local updates and then delta-shipped onward. *)
  let cluster = Cluster.create ~seed:11 ~mode:(oplog ()) ~n:3 () in
  Cluster.update cluster ~node:0 ~item:"hot" (set "h1");
  let (_ : Node.oob_result) =
    Cluster.fetch_out_of_bound cluster ~recipient:1 ~source:0 "hot"
  in
  Cluster.update cluster ~node:1 ~item:"hot" (set "h2");
  let rounds = Cluster.sync_until_converged cluster in
  Alcotest.(check bool) "converged" true (rounds < 50);
  for node = 0 to 2 do
    Alcotest.(check (option string))
      (Printf.sprintf "node %d" node)
      (Some "h2")
      (Cluster.read cluster ~node ~item:"hot")
  done;
  Alcotest.(check int) "no conflicts" 0
    (Cluster.total_counters cluster).conflicts_detected;
  expect_ok cluster

(* Property: op-log mode with a small history (forcing fallbacks)
   produces exactly the same final state as whole-item mode on random
   single-writer workloads. *)
let prop_oplog_equals_whole =
  QCheck2.Gen.(
    let action = pair (int_bound 3) (int_bound 4) in
    QCheck2.Test.make ~name:"op-log and whole-item modes agree" ~count:100
      (list_size (int_range 1 60) action)
      (fun script ->
        let run mode =
          let cluster = Cluster.create ~seed:19 ?mode ~n:3 () in
          List.iteri
            (fun i (kind, rank) ->
              let item = Printf.sprintf "i%d" rank in
              let owner = rank mod 3 in
              match kind with
              | 0 | 1 ->
                Cluster.update cluster ~node:owner ~item (set (Printf.sprintf "v%d" i))
              | 2 ->
                Cluster.update cluster ~node:owner ~item
                  (splice (i mod 7) (Printf.sprintf "<%d>" i))
              | _ -> ignore (Cluster.pull cluster ~recipient:(rank mod 3)
                               ~source:((rank + 1) mod 3)))
            script;
          ignore (Cluster.sync_until_converged ~max_rounds:500 cluster);
          List.map
            (fun rank -> Cluster.read cluster ~node:0 ~item:(Printf.sprintf "i%d" rank))
            [ 0; 1; 2; 3; 4 ]
        in
        let whole = run None in
        let delta = run (Some (oplog ~depth:3 ())) in
        whole = delta))

let suite =
  [
    Alcotest.test_case "history bounded" `Quick test_history_bounded;
    Alcotest.test_case "history oldest per origin" `Quick test_history_oldest_per_origin;
    Alcotest.test_case "history entries_after" `Quick test_history_entries_after;
    Alcotest.test_case "delta basic" `Quick test_delta_basic;
    Alcotest.test_case "delta matches whole mode" `Quick test_delta_matches_whole_mode;
    Alcotest.test_case "delta transitive forwarding" `Quick
      test_delta_transitive_forwarding;
    Alcotest.test_case "fallback when history evicted" `Quick
      test_fallback_when_history_evicted;
    Alcotest.test_case "delta within history window" `Quick
      test_delta_within_history_window;
    Alcotest.test_case "delta bytes advantage" `Quick test_delta_bytes_advantage;
    Alcotest.test_case "conflicts still detected" `Quick test_oplog_conflicts_still_detected;
    Alcotest.test_case "op-log with out-of-bound" `Quick test_oplog_with_out_of_bound;
    QCheck_alcotest.to_alcotest prop_oplog_equals_whole;
  ]

(* Whole-system integration scenarios: the protocol, out-of-bound
   copying, persistence, tokens and sessions working together under one
   long, deterministic, mixed workload. *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Snapshot = Edb_persist.Snapshot
module Tokens = Edb_tokens.Token_manager
module Session = Edb_sessions.Session
module Operation = Edb_store.Operation
module Prng = Edb_util.Prng

let set v = Operation.Set v

let expect_ok cluster =
  match Cluster.check_invariants cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

(* Scenario 1: a realistic week at the office. Single-writer updates,
   hot items fetched out of bound, periodic anti-entropy, one server
   crash-recovered from a snapshot mid-run. Everything must converge
   with zero conflicts.

   Server 4 originates no updates: snapshot-only recovery reproduces a
   checkpointed state, so a node that originated un-propagated updates
   after its checkpoint would legitimately lose them (that is what the
   WAL in [Durable_node] is for — covered by test_wal). Here node 4 is
   a pure replica, so recovery plus anti-entropy must restore
   everything. *)
let test_office_week () =
  let n = 5 in
  let cluster = Cluster.create ~seed:101 ~n () in
  let prng = Prng.create ~seed:102 in
  let item rank = Printf.sprintf "doc-%02d" rank in
  let version = Array.make 20 0 in
  let write rank =
    let owner = rank mod (n - 1) in
    version.(rank) <- version.(rank) + 1;
    Cluster.update cluster ~node:owner ~item:(item rank)
      (set (Printf.sprintf "%d:%d" rank version.(rank)))
  in
  let checkpoint = ref None in
  for day = 1 to 7 do
    (* Morning edits. *)
    for _ = 1 to 10 do
      write (Prng.int prng 20)
    done;
    (* A couple of urgent out-of-bound fetches of hot documents. *)
    for _ = 1 to 2 do
      let rank = Prng.int prng 20 in
      let owner = rank mod (n - 1) in
      let reader = (owner + 1 + Prng.int prng (n - 1)) mod n in
      if reader <> owner then
        ignore (Cluster.fetch_out_of_bound cluster ~recipient:reader ~source:owner (item rank))
    done;
    (* Evening anti-entropy. *)
    Cluster.random_pull_round cluster;
    (* Day 3: checkpoint server 4. Day 5: it "crashes" and recovers. *)
    if day = 3 then checkpoint := Some (Snapshot.encode (Cluster.node cluster 4));
    if day = 5 then begin
      match !checkpoint with
      | Some blob -> (
        match Snapshot.decode blob with
        | Ok restored -> Cluster.replace_node cluster 4 restored
        | Error msg -> Alcotest.fail msg)
      | None -> Alcotest.fail "checkpoint missing"
    end
  done;
  let rounds = Cluster.sync_until_converged ~max_rounds:200 cluster in
  Alcotest.(check bool) "converged" true (rounds <= 200);
  Alcotest.(check int) "no conflicts all week" 0
    (Cluster.total_counters cluster).conflicts_detected;
  (* Every document's newest version is visible everywhere. *)
  for rank = 0 to 19 do
    if version.(rank) > 0 then
      for node = 0 to n - 1 do
        Alcotest.(check (option string))
          (Printf.sprintf "doc %d at node %d" rank node)
          (Some (Printf.sprintf "%d:%d" rank version.(rank)))
          (Cluster.read cluster ~node ~item:(item rank))
      done
  done;
  expect_ok cluster

(* Scenario 2: contended multi-writer editing stays conflict-free under
   tokens, while roaming sessions never observe stale state, across a
   long deterministic run. *)
let test_tokens_and_sessions_soak () =
  let n = 4 in
  let cluster = Cluster.create ~seed:201 ~n () in
  let tokens = Tokens.create cluster in
  let session = Session.create cluster in
  let prng = Prng.create ~seed:202 in
  let last_written = ref None in
  for step = 1 to 200 do
    let node = Prng.int prng n in
    let value = Printf.sprintf "s%04d" step in
    (match Tokens.update tokens ~node ~item:"shared" (set value) with
    | Ok _ -> last_written := Some (node, value)
    | Error (`Cycle _) -> Alcotest.fail "token cycle");
    (* The session follows the writes around (it is the writer). *)
    (match Session.read session ~node ~item:"shared" with
    | Ok _ | Error (`Violates _) -> ()
    | Error (`Aux_pending _) ->
      (* Reading at a server holding an aux copy is fine through
         Node.read; Session reads regular copies and may be refused
         only for writes. A read never returns Aux_pending. *)
      Alcotest.fail "read returned aux-pending");
    if step mod 5 = 0 then Cluster.random_pull_round cluster
  done;
  let rounds = Cluster.sync_until_converged ~max_rounds:300 cluster in
  Alcotest.(check bool) "converged" true (rounds <= 300);
  Alcotest.(check int) "zero conflicts under tokens" 0
    (Cluster.total_counters cluster).conflicts_detected;
  (match !last_written with
  | Some (_, value) ->
    for node = 0 to n - 1 do
      Alcotest.(check (option string))
        (Printf.sprintf "final value at node %d" node)
        (Some value)
        (Cluster.read cluster ~node ~item:"shared")
    done
  | None -> Alcotest.fail "nothing written");
  (match Tokens.check_invariants tokens with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  expect_ok cluster

(* Scenario 3: the same long mixed soak in op-log mode, with a history
   small enough to force regular whole-copy fallbacks. *)
let test_oplog_soak () =
  let n = 4 in
  let cluster = Cluster.create ~seed:301 ~mode:(Node.Op_log { depth = 3 }) ~n () in
  let prng = Prng.create ~seed:302 in
  let item rank = Printf.sprintf "k%02d" rank in
  let version = Array.make 12 0 in
  for _ = 1 to 400 do
    match Prng.int prng 4 with
    | 0 | 1 ->
      let rank = Prng.int prng 12 in
      let owner = rank mod n in
      version.(rank) <- version.(rank) + 1;
      Cluster.update cluster ~node:owner ~item:(item rank)
        (set (Printf.sprintf "%d:%d" rank version.(rank)))
    | 2 ->
      let rank = Prng.int prng 12 in
      let owner = rank mod n in
      Cluster.update cluster ~node:owner ~item:(item rank)
        (Operation.Splice { offset = 0; data = "*" })
    | _ ->
      let recipient = Prng.int prng n in
      let source = (recipient + 1 + Prng.int prng (n - 1)) mod n in
      ignore (Cluster.pull cluster ~recipient ~source)
  done;
  let rounds = Cluster.sync_until_converged ~max_rounds:300 cluster in
  Alcotest.(check bool) "converged" true (rounds <= 300);
  Alcotest.(check int) "no conflicts" 0
    (Cluster.total_counters cluster).conflicts_detected;
  let total = Cluster.total_counters cluster in
  Alcotest.(check bool) "deltas actually used" true (total.delta_ops_applied > 0);
  Alcotest.(check bool) "fallbacks actually exercised" true (total.whole_fallbacks > 0);
  expect_ok cluster

let suite =
  [
    Alcotest.test_case "office week (oob + crash recovery)" `Quick test_office_week;
    Alcotest.test_case "tokens + sessions soak" `Quick test_tokens_and_sessions_soak;
    Alcotest.test_case "op-log soak with fallbacks" `Quick test_oplog_soak;
  ]

(* Tests for workload generation. *)

module Workload = Edb_workload.Workload
module Selector = Edb_workload.Workload.Selector
module Prng = Edb_util.Prng
module Operation = Edb_store.Operation

let test_item_name_padding () =
  Alcotest.(check string) "padded" "item-000007" (Workload.item_name 7);
  Alcotest.(check string) "large" "item-123456" (Workload.item_name 123456)

let test_universe () =
  Alcotest.(check (list string)) "universe 3"
    [ "item-000000"; "item-000001"; "item-000002" ]
    (Workload.universe 3)

let test_payload_size_and_uniqueness () =
  let p1 = Workload.payload ~item:"a" ~seq:1 ~size:32 in
  let p2 = Workload.payload ~item:"a" ~seq:2 ~size:32 in
  let p3 = Workload.payload ~item:"b" ~seq:1 ~size:32 in
  Alcotest.(check int) "exact size" 32 (String.length p1);
  Alcotest.(check bool) "distinct per seq" true (p1 <> p2);
  Alcotest.(check bool) "distinct per item" true (p1 <> p3)

let test_payload_truncation () =
  let p = Workload.payload ~item:"item-000001" ~seq:123 ~size:4 in
  Alcotest.(check int) "truncated to size" 4 (String.length p)

let test_selector_uniform_range () =
  let s = Selector.uniform ~n:10 in
  let prng = Prng.create ~seed:1 in
  for _ = 1 to 500 do
    let r = Selector.pick s prng in
    Alcotest.(check bool) "in range" true (r >= 0 && r < 10)
  done;
  Alcotest.(check int) "universe size" 10 (Selector.universe_size s)

let test_selector_first_n () =
  let s = Selector.first_n ~n:100 ~subset:5 in
  let prng = Prng.create ~seed:2 in
  for _ = 1 to 500 do
    let r = Selector.pick s prng in
    Alcotest.(check bool) "confined to subset" true (r >= 0 && r < 5)
  done

let test_selector_hot_cold () =
  let s = Selector.hot_cold ~n:100 ~hot:10 ~hot_fraction:0.9 in
  let prng = Prng.create ~seed:3 in
  let hot_hits = ref 0 in
  let trials = 5000 in
  for _ = 1 to trials do
    if Selector.pick s prng < 10 then incr hot_hits
  done;
  let freq = float_of_int !hot_hits /. float_of_int trials in
  Alcotest.(check bool) "hot set hit ~90%" true (freq > 0.85 && freq < 0.95)

let test_selector_zipfian_skew () =
  let s = Selector.zipfian ~n:1000 ~exponent:1.0 in
  let prng = Prng.create ~seed:4 in
  let head = ref 0 in
  let trials = 5000 in
  for _ = 1 to trials do
    if Selector.pick s prng < 10 then incr head
  done;
  (* Top-10 of 1000 under zipf(1) carries ~39% of the mass. *)
  let freq = float_of_int !head /. float_of_int trials in
  Alcotest.(check bool) "head heavy" true (freq > 0.25)

let test_stream_determinism () =
  let make () =
    Workload.update_stream ~seed:5 ~selector:(Selector.uniform ~n:20) ~nodes:3 ~count:50
      ~value_size:16
  in
  Alcotest.(check bool) "same seed, same stream" true (make () = make ())

let test_stream_shape () =
  let steps =
    Workload.update_stream ~seed:6 ~selector:(Selector.uniform ~n:20) ~nodes:3 ~count:40
      ~value_size:16
  in
  Alcotest.(check int) "count" 40 (List.length steps);
  List.iter
    (fun (step : Workload.step) ->
      Alcotest.(check bool) "node in range" true (step.node >= 0 && step.node < 3);
      match step.op with
      | Operation.Set v -> Alcotest.(check int) "value size" 16 (String.length v)
      | Operation.Splice _ -> Alcotest.fail "streams emit Set operations")
    steps

let test_apply_feeds_protocol () =
  let cluster = Edb_core.Cluster.create ~n:2 () in
  let steps =
    Workload.update_stream ~seed:7 ~selector:(Selector.uniform ~n:5) ~nodes:2 ~count:25
      ~value_size:8
  in
  Workload.apply steps ~update:(fun ~node ~item ~op ->
      Edb_core.Cluster.update cluster ~node ~item op);
  let total = Edb_core.Cluster.total_counters cluster in
  Alcotest.(check int) "all updates applied" 25 total.updates_applied

let suite =
  [
    Alcotest.test_case "item name padding" `Quick test_item_name_padding;
    Alcotest.test_case "universe" `Quick test_universe;
    Alcotest.test_case "payload size & uniqueness" `Quick test_payload_size_and_uniqueness;
    Alcotest.test_case "payload truncation" `Quick test_payload_truncation;
    Alcotest.test_case "uniform selector range" `Quick test_selector_uniform_range;
    Alcotest.test_case "first_n selector" `Quick test_selector_first_n;
    Alcotest.test_case "hot-cold selector" `Quick test_selector_hot_cold;
    Alcotest.test_case "zipfian selector skew" `Quick test_selector_zipfian_skew;
    Alcotest.test_case "stream determinism" `Quick test_stream_determinism;
    Alcotest.test_case "stream shape" `Quick test_stream_shape;
    Alcotest.test_case "apply feeds protocol" `Quick test_apply_feeds_protocol;
  ]

(* Tests for session guarantees (Terry et al. [14], paper §8.3). *)

module Cluster = Edb_core.Cluster
module Session = Edb_sessions.Session
module Operation = Edb_store.Operation

let set v = Operation.Set v

let expect_value expected = function
  | Ok v -> Alcotest.(check (option string)) "read value" expected v
  | Error (`Violates g) ->
    Alcotest.fail (Format.asprintf "unexpected denial: %a" Session.pp_guarantee g)
  | Error (`Aux_pending item) -> Alcotest.fail ("unexpected aux-pending on " ^ item)

let expect_write = function
  | Ok () -> ()
  | Error (`Violates g) ->
    Alcotest.fail (Format.asprintf "unexpected denial: %a" Session.pp_guarantee g)
  | Error (`Aux_pending item) -> Alcotest.fail ("unexpected aux-pending on " ^ item)

let expect_violation expected = function
  | Error (`Violates g) when g = expected -> ()
  | Error (`Violates g) ->
    Alcotest.fail (Format.asprintf "wrong guarantee: %a" Session.pp_guarantee g)
  | Error (`Aux_pending _) -> Alcotest.fail "expected a guarantee violation"
  | Ok _ -> Alcotest.fail "expected a denial"

let test_read_your_writes () =
  let cluster = Cluster.create ~n:2 () in
  let session = Session.create cluster in
  expect_write (Session.write session ~node:0 ~item:"x" (set "mine"));
  (* Server 1 has not heard of the write: reading there would miss it. *)
  expect_violation Session.Read_your_writes
    (Session.read session ~node:1 ~item:"x" :> (string option, Session.denial) result);
  (* Reading back at the server that took the write is fine. *)
  expect_value (Some "mine") (Session.read session ~node:0 ~item:"x");
  (* After anti-entropy, server 1 is current enough. *)
  ignore (Cluster.pull cluster ~recipient:1 ~source:0);
  expect_value (Some "mine") (Session.read session ~node:1 ~item:"x")

let test_monotonic_reads () =
  let cluster = Cluster.create ~n:2 () in
  (* Another client writes at server 0. *)
  Cluster.update cluster ~node:0 ~item:"x" (set "v1");
  let session = Session.create ~guarantees:[ Session.Monotonic_reads ] cluster in
  expect_value (Some "v1") (Session.read session ~node:0 ~item:"x");
  (* Server 1 is behind what the session has already seen. *)
  expect_violation Session.Monotonic_reads (Session.read session ~node:1 ~item:"x");
  ignore (Cluster.pull cluster ~recipient:1 ~source:0);
  expect_value (Some "v1") (Session.read session ~node:1 ~item:"x")

let test_writes_follow_reads () =
  let cluster = Cluster.create ~n:2 () in
  Cluster.update cluster ~node:0 ~item:"question" (set "Q?");
  let session = Session.create ~guarantees:[ Session.Writes_follow_reads ] cluster in
  expect_value (Some "Q?") (Session.read session ~node:0 ~item:"question");
  (* Posting the answer at a server that has not seen the question
     would order the answer before it. *)
  expect_violation Session.Writes_follow_reads
    (Session.write session ~node:1 ~item:"answer" (set "A!"));
  ignore (Cluster.pull cluster ~recipient:1 ~source:0);
  expect_write (Session.write session ~node:1 ~item:"answer" (set "A!"))

let test_monotonic_writes () =
  let cluster = Cluster.create ~n:2 () in
  let session = Session.create ~guarantees:[ Session.Monotonic_writes ] cluster in
  expect_write (Session.write session ~node:0 ~item:"lib" (set "v1"));
  (* The second write must not land on a server missing the first. *)
  expect_violation Session.Monotonic_writes
    (Session.write session ~node:1 ~item:"lib" (set "v2"));
  ignore (Cluster.pull cluster ~recipient:1 ~source:0);
  expect_write (Session.write session ~node:1 ~item:"lib" (set "v2"));
  ignore (Cluster.sync_until_converged cluster);
  Alcotest.(check (option string)) "writes applied in order" (Some "v2")
    (Cluster.read cluster ~node:0 ~item:"lib")

let test_no_guarantees_never_denied () =
  let cluster = Cluster.create ~n:2 () in
  let session = Session.create ~guarantees:[] cluster in
  expect_write (Session.write session ~node:0 ~item:"x" (set "v"));
  (* Stale read is permitted without guarantees. *)
  expect_value None (Session.read session ~node:1 ~item:"x")

let test_sessions_are_independent () =
  let cluster = Cluster.create ~n:2 () in
  let alice = Session.create cluster in
  let bob = Session.create cluster in
  expect_write (Session.write alice ~node:0 ~item:"x" (set "alice"));
  (* Bob never wrote nor read anything: server 1 is fine for him. *)
  expect_value None (Session.read bob ~node:1 ~item:"x")

let test_write_refused_on_aux_copy () =
  let cluster = Cluster.create ~n:2 () in
  Cluster.update cluster ~node:0 ~item:"hot" (set "v1");
  ignore (Cluster.fetch_out_of_bound cluster ~recipient:1 ~source:0 "hot");
  let session = Session.create ~guarantees:[] cluster in
  match Session.write session ~node:1 ~item:"hot" (set "v2") with
  | Error (`Aux_pending item) -> Alcotest.(check string) "names the item" "hot" item
  | Error (`Violates _) | Ok () -> Alcotest.fail "expected aux-pending refusal"

let test_vectors_accumulate () =
  let cluster = Cluster.create ~n:3 () in
  Cluster.update cluster ~node:1 ~item:"a" (set "v");
  let session = Session.create ~guarantees:[] cluster in
  ignore (Session.read session ~node:1 ~item:"a");
  ignore (Session.write session ~node:0 ~item:"b" (set "w"));
  let rv = Session.read_vector session and wv = Session.write_vector session in
  Alcotest.(check int) "read vector saw node 1's update" 1
    (Edb_vv.Version_vector.get rv 1);
  Alcotest.(check int) "write vector covers own write" 1
    (Edb_vv.Version_vector.get wv 0)

(* Property: a fully-guarded session roaming randomly across servers,
   interleaved with random anti-entropy, never reads a value older than
   one it already read (per item), and never misses its own writes. *)
let prop_session_monotonicity =
  QCheck2.Gen.(
    let action = triple (int_bound 2) (int_bound 2) (int_bound 3) in
    QCheck2.Test.make ~name:"guarded sessions never step backwards" ~count:120
      (list_size (int_range 1 60) action)
      (fun script ->
        let cluster = Cluster.create ~seed:13 ~n:3 () in
        let session = Session.create cluster in
        (* Model: per item, the last value this session wrote or read. *)
        let observed = Hashtbl.create 4 in
        let writes = Hashtbl.create 4 in
        let counter = ref 0 in
        let ok = ref true in
        List.iter
          (fun (node, item_rank, kind) ->
            let item = Printf.sprintf "i%d" item_rank in
            match kind with
            | 0 | 1 -> (
              match Session.read session ~node ~item with
              | Ok value ->
                let value = Option.value ~default:"" value in
                (* Must include the session's own last write... *)
                (match Hashtbl.find_opt writes item with
                | Some w when not (String.equal value w) ->
                  (* ...unless another writer legally overwrote it; but
                     in this script the session is the only writer. *)
                  ok := false
                | Some _ | None -> ());
                (* ...and must not regress below a previous read. *)
                (match Hashtbl.find_opt observed item with
                | Some prev when String.compare value prev < 0 -> ok := false
                | Some _ | None -> ());
                Hashtbl.replace observed item value
              | Error (`Violates _) -> (* denial is always acceptable *) ()
              | Error (`Aux_pending _) -> ok := false)
            | 2 -> (
              incr counter;
              (* Monotonically increasing values make "older" detectable
                 by string comparison. *)
              let value = Printf.sprintf "%06d" !counter in
              match Session.write session ~node ~item (set value) with
              | Ok () ->
                Hashtbl.replace writes item value;
                Hashtbl.replace observed item value
              | Error (`Violates _) -> ()
              | Error (`Aux_pending _) -> ok := false)
            | _ ->
              ignore (Cluster.pull cluster ~recipient:node ~source:((node + 1) mod 3)))
          script;
        !ok))

let suite =
  [
    Alcotest.test_case "read-your-writes" `Quick test_read_your_writes;
    Alcotest.test_case "monotonic reads" `Quick test_monotonic_reads;
    Alcotest.test_case "writes-follow-reads" `Quick test_writes_follow_reads;
    Alcotest.test_case "monotonic writes" `Quick test_monotonic_writes;
    Alcotest.test_case "no guarantees, no denials" `Quick test_no_guarantees_never_denied;
    Alcotest.test_case "sessions independent" `Quick test_sessions_are_independent;
    Alcotest.test_case "write refused on aux copy" `Quick test_write_refused_on_aux_copy;
    Alcotest.test_case "vectors accumulate" `Quick test_vectors_accumulate;
    QCheck_alcotest.to_alcotest prop_session_monotonicity;
  ]

(* Tests for version vectors: the comparison lattice of paper §3 and its
   Theorem 3 corollaries. *)

module Vv = Edb_vv.Version_vector

let comparison =
  let pp fmt (c : Vv.comparison) =
    Format.pp_print_string fmt
      (match c with
      | Vv.Equal -> "Equal"
      | Vv.Dominates -> "Dominates"
      | Vv.Dominated -> "Dominated"
      | Vv.Concurrent -> "Concurrent")
  in
  Alcotest.testable pp ( = )

let vv l = Vv.of_array (Array.of_list l)

let test_create_zero () =
  let v = Vv.create ~n:4 in
  Alcotest.(check int) "dimension" 4 (Vv.dimension v);
  Alcotest.(check int) "sum" 0 (Vv.sum v);
  for j = 0 to 3 do
    Alcotest.(check int) "component" 0 (Vv.get v j)
  done

let test_incr_and_sum () =
  let v = Vv.create ~n:3 in
  Vv.incr v 1;
  Vv.incr v 1;
  Vv.incr v 2;
  Alcotest.(check int) "component 1" 2 (Vv.get v 1);
  Alcotest.(check int) "component 2" 1 (Vv.get v 2);
  Alcotest.(check int) "sum" 3 (Vv.sum v)

let test_compare_equal () =
  Alcotest.check comparison "equal" Vv.Equal (Vv.compare_vv (vv [ 1; 2 ]) (vv [ 1; 2 ]))

let test_compare_dominates () =
  Alcotest.check comparison "dominates" Vv.Dominates
    (Vv.compare_vv (vv [ 2; 2 ]) (vv [ 1; 2 ]));
  Alcotest.check comparison "dominated" Vv.Dominated
    (Vv.compare_vv (vv [ 1; 2 ]) (vv [ 2; 2 ]))

let test_compare_concurrent () =
  (* Corollary 4: x_i saw updates x_j missed and vice versa. *)
  Alcotest.check comparison "concurrent" Vv.Concurrent
    (Vv.compare_vv (vv [ 2; 0 ]) (vv [ 0; 2 ]))

let test_dimension_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Version_vector: dimension mismatch")
    (fun () -> ignore (Vv.compare_vv (vv [ 1 ]) (vv [ 1; 2 ])))

let test_merge_is_lub () =
  let a = vv [ 3; 0; 5 ] and b = vv [ 1; 4; 5 ] in
  let m = Vv.copy a in
  Vv.merge_into m ~from:b;
  Alcotest.(check (array int)) "component-wise max" [| 3; 4; 5 |] (Vv.to_array m);
  Alcotest.(check bool) "dominates a" true (Vv.dominates_or_equal m a);
  Alcotest.(check bool) "dominates b" true (Vv.dominates_or_equal m b)

let test_add_diff () =
  (* DBVV rule 3: copying an item adds the per-origin surplus. *)
  let dbvv = vv [ 10; 10; 10 ] in
  Vv.add_diff_into dbvv ~newer:(vv [ 4; 2; 7 ]) ~older:(vv [ 4; 1; 5 ]) ;
  Alcotest.(check (array int)) "grown by diff" [| 10; 11; 12 |] (Vv.to_array dbvv)

let test_add_diff_requires_domination () =
  let dbvv = vv [ 0; 0 ] in
  Alcotest.check_raises "negative diff"
    (Invalid_argument "Version_vector.add_diff_into: newer does not dominate older")
    (fun () -> Vv.add_diff_into dbvv ~newer:(vv [ 1; 0 ]) ~older:(vv [ 0; 1 ]))

let test_conflicting_components () =
  match Vv.conflicting_components (vv [ 2; 0; 1 ]) (vv [ 0; 3; 1 ]) with
  | Some (k, l) ->
    (* a.(k) < b.(k) and a.(l) > b.(l). *)
    Alcotest.(check int) "k" 1 k;
    Alcotest.(check int) "l" 0 l
  | None -> Alcotest.fail "expected conflicting components"

let test_conflicting_components_none () =
  Alcotest.(check bool) "no conflict" true
    (Vv.conflicting_components (vv [ 1; 1 ]) (vv [ 2; 2 ]) = None)

let test_copy_isolation () =
  let a = vv [ 1; 2 ] in
  let b = Vv.copy a in
  Vv.incr b 0;
  Alcotest.(check int) "original untouched" 1 (Vv.get a 0)

let test_pp () =
  Alcotest.(check string) "rendering" "<1,2,3>" (Vv.to_string (vv [ 1; 2; 3 ]))

let test_set_rejects_negative () =
  let v = Vv.create ~n:2 in
  Alcotest.check_raises "negative" (Invalid_argument "Version_vector.set: negative component")
    (fun () -> Vv.set v 0 (-1))

(* ---------- Property tests: the dominance partial order ---------- *)

let gen_vv_pair =
  QCheck2.Gen.(
    let component = int_bound 4 in
    sized_size (int_range 1 6) (fun n ->
        pair (array_size (return n) component) (array_size (return n) component)))

let prop_comparison_antisymmetry =
  QCheck2.Test.make ~name:"compare antisymmetry" ~count:500 gen_vv_pair (fun (a, b) ->
      let va = Vv.of_array a and vb = Vv.of_array b in
      match (Vv.compare_vv va vb, Vv.compare_vv vb va) with
      | Vv.Equal, Vv.Equal
      | Vv.Dominates, Vv.Dominated
      | Vv.Dominated, Vv.Dominates
      | Vv.Concurrent, Vv.Concurrent -> true
      | _, _ -> false)

let prop_merge_commutative =
  QCheck2.Test.make ~name:"merge commutative" ~count:500 gen_vv_pair (fun (a, b) ->
      let m1 = Vv.of_array a in
      Vv.merge_into m1 ~from:(Vv.of_array b);
      let m2 = Vv.of_array b in
      Vv.merge_into m2 ~from:(Vv.of_array a);
      Vv.equal m1 m2)

let prop_merge_idempotent =
  QCheck2.Test.make ~name:"merge idempotent" ~count:500
    QCheck2.Gen.(array_size (int_range 1 6) (int_bound 4))
    (fun a ->
      let m = Vv.of_array a in
      Vv.merge_into m ~from:(Vv.of_array a);
      Vv.equal m (Vv.of_array a))

let prop_merge_upper_bound =
  QCheck2.Test.make ~name:"merge is an upper bound" ~count:500 gen_vv_pair
    (fun (a, b) ->
      let va = Vv.of_array a and vb = Vv.of_array b in
      let m = Vv.copy va in
      Vv.merge_into m ~from:vb;
      Vv.dominates_or_equal m va && Vv.dominates_or_equal m vb)

let prop_equal_iff_arrays_equal =
  QCheck2.Test.make ~name:"Equal iff identical components" ~count:500 gen_vv_pair
    (fun (a, b) ->
      let va = Vv.of_array a and vb = Vv.of_array b in
      Vv.equal va vb = (a = b))

let prop_concurrent_iff_conflicting_components =
  QCheck2.Test.make ~name:"Concurrent iff conflicting components exist" ~count:500
    gen_vv_pair (fun (a, b) ->
      let va = Vv.of_array a and vb = Vv.of_array b in
      Vv.concurrent va vb = (Vv.conflicting_components va vb <> None))

let suite =
  [
    Alcotest.test_case "create zero" `Quick test_create_zero;
    Alcotest.test_case "incr and sum" `Quick test_incr_and_sum;
    Alcotest.test_case "compare equal" `Quick test_compare_equal;
    Alcotest.test_case "compare dominates" `Quick test_compare_dominates;
    Alcotest.test_case "compare concurrent" `Quick test_compare_concurrent;
    Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
    Alcotest.test_case "merge is lub" `Quick test_merge_is_lub;
    Alcotest.test_case "add_diff (DBVV rule 3)" `Quick test_add_diff;
    Alcotest.test_case "add_diff requires domination" `Quick
      test_add_diff_requires_domination;
    Alcotest.test_case "conflicting components" `Quick test_conflicting_components;
    Alcotest.test_case "conflicting components absent" `Quick
      test_conflicting_components_none;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "set rejects negative" `Quick test_set_rejects_negative;
    QCheck_alcotest.to_alcotest prop_comparison_antisymmetry;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_idempotent;
    QCheck_alcotest.to_alcotest prop_merge_upper_bound;
    QCheck_alcotest.to_alcotest prop_equal_iff_arrays_equal;
    QCheck_alcotest.to_alcotest prop_concurrent_iff_conflicting_components;
  ]

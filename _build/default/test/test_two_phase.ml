(* Tests for the two-phase gossip baseline (Heddaya et al., paper §8.3). *)

module Tpg = Edb_baselines.Two_phase_gossip
module Wuu = Edb_baselines.Wuu_bernstein
module Driver = Edb_baselines.Driver
module Operation = Edb_store.Operation

let set v = Operation.Set v

let test_delivers_and_forwards () =
  let g = Tpg.create ~n:3 in
  Tpg.update g ~node:0 ~item:"x" (set "v");
  Tpg.session g ~src:0 ~dst:1;
  Tpg.session g ~src:1 ~dst:2;
  Alcotest.(check (option string)) "transitive" (Some "v") (Tpg.read g ~node:2 ~item:"x");
  Alcotest.(check bool) "converged" true (Tpg.converged g)

let test_no_duplicate_application () =
  let g = Tpg.create ~n:2 in
  Tpg.update g ~node:0 ~item:"x" (set "v");
  Tpg.session g ~src:0 ~dst:1;
  Tpg.session g ~src:0 ~dst:1;
  let total = (Tpg.driver g).Driver.total_counters () in
  Alcotest.(check int) "applied once" 1 total.items_copied

let test_ack_enables_gc () =
  let g = Tpg.create ~n:2 in
  Tpg.update g ~node:0 ~item:"x" (set "v");
  (* The synchronous session includes the acknowledgement phase, so one
     exchange lets both sides collect. *)
  Tpg.session g ~src:0 ~dst:1;
  Alcotest.(check int) "source GC'd via the ack" 0 (Tpg.log_length g ~node:0);
  Alcotest.(check int) "receiver GC'd" 0 (Tpg.log_length g ~node:1)

let test_gc_waits_for_third_node () =
  let g = Tpg.create ~n:3 in
  Tpg.update g ~node:0 ~item:"x" (set "v");
  Tpg.session g ~src:0 ~dst:1;
  (* Node 2 has not acknowledged: the record must be retained. *)
  Alcotest.(check bool) "retained while node 2 lags" true (Tpg.log_length g ~node:0 > 0);
  Tpg.session g ~src:0 ~dst:2;
  Alcotest.(check int) "collected after full coverage" 0 (Tpg.log_length g ~node:0)

let test_smaller_vector_overhead_than_wuu () =
  (* The §8.3 claim: fewer version vectors per gossip message. Compare
     the bytes of one no-op session at n = 8 (pure vector overhead). *)
  let n = 8 in
  let w = Wuu.create ~n in
  let g = Tpg.create ~n in
  Wuu.session w ~src:0 ~dst:1;
  Tpg.session g ~src:0 ~dst:1;
  let wuu_bytes = ((Wuu.driver w).Driver.total_counters ()).bytes_sent in
  let tpg_bytes = ((Tpg.driver g).Driver.total_counters ()).bytes_sent in
  (* Wuu ships the n x n matrix (8n² bytes); two-phase ships 3 vectors
     in total (2 out, 1 ack). *)
  Alcotest.(check int) "wuu matrix bytes" (8 * n * n) wuu_bytes;
  Alcotest.(check int) "two-phase vector bytes" (3 * 8 * n) tpg_bytes;
  Alcotest.(check bool) "strictly cheaper" true (tpg_bytes < wuu_bytes)

let test_still_linear_in_updates () =
  (* What two-phase gossip does NOT fix (and the paper's protocol does):
     the per-record scan. *)
  let g = Tpg.create ~n:2 in
  for _ = 1 to 30 do
    Tpg.update g ~node:0 ~item:"hot" (set "v")
  done;
  (Tpg.driver g).Driver.reset_counters ();
  Tpg.session g ~src:0 ~dst:1;
  let total = (Tpg.driver g).Driver.total_counters () in
  Alcotest.(check bool) "scans all retained records" true
    (total.log_records_examined >= 30)

let test_lww_convergence () =
  let g = Tpg.create ~n:3 in
  Tpg.update g ~node:0 ~item:"x" (set "a");
  Tpg.update g ~node:1 ~item:"x" (set "b");
  List.iter (fun (src, dst) -> Tpg.session g ~src ~dst)
    [ (0, 1); (1, 2); (2, 0); (0, 1); (1, 2); (2, 0) ];
  Alcotest.(check bool) "converged" true (Tpg.converged g);
  let v0 = Tpg.read g ~node:0 ~item:"x" and v2 = Tpg.read g ~node:2 ~item:"x" in
  Alcotest.(check bool) "values agree" true (v0 = v2)

let suite =
  [
    Alcotest.test_case "delivers and forwards" `Quick test_delivers_and_forwards;
    Alcotest.test_case "no duplicate application" `Quick test_no_duplicate_application;
    Alcotest.test_case "ack enables GC" `Quick test_ack_enables_gc;
    Alcotest.test_case "GC waits for third node" `Quick test_gc_waits_for_third_node;
    Alcotest.test_case "smaller vector overhead than wuu" `Quick
      test_smaller_vector_overhead_than_wuu;
    Alcotest.test_case "still linear in updates" `Quick test_still_linear_in_updates;
    Alcotest.test_case "LWW convergence" `Quick test_lww_convergence;
  ]

(* Tests for the in-process cluster: convergence under the schedules of
   paper Theorem 5 and the correctness criteria of §2.1. *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Operation = Edb_store.Operation
module Vv = Edb_vv.Version_vector

let set v = Operation.Set v

let expect_ok cluster =
  match Cluster.check_invariants cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violated: " ^ msg)

let test_fresh_cluster_converged () =
  let cluster = Cluster.create ~n:4 () in
  Alcotest.(check bool) "trivially converged" true (Cluster.converged cluster)

let test_not_converged_after_update () =
  let cluster = Cluster.create ~n:3 () in
  Cluster.update cluster ~node:0 ~item:"x" (set "v");
  Alcotest.(check bool) "diverged" false (Cluster.converged cluster)

let test_random_rounds_converge () =
  let cluster = Cluster.create ~seed:7 ~n:5 () in
  for i = 0 to 9 do
    Cluster.update cluster ~node:(i mod 5) ~item:(Printf.sprintf "k%d" i) (set "v")
  done;
  let rounds = Cluster.sync_until_converged cluster in
  Alcotest.(check bool) "converged in few rounds" true (rounds <= 30);
  for node = 0 to 4 do
    for i = 0 to 9 do
      Alcotest.(check (option string))
        (Printf.sprintf "node %d sees k%d" node i)
        (Some "v")
        (Cluster.read cluster ~node ~item:(Printf.sprintf "k%d" i))
    done
  done;
  expect_ok cluster

let test_ring_rounds_converge () =
  (* The ring schedule satisfies Theorem 5's hypothesis: node i pulls
     from i-1, so knowledge travels the full circle in n-1 rounds. *)
  let n = 6 in
  let cluster = Cluster.create ~n () in
  Cluster.update cluster ~node:0 ~item:"x" (set "gold");
  for _ = 1 to n - 1 do
    Cluster.ring_pull_round cluster
  done;
  for node = 0 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "node %d caught up" node)
      (Some "gold")
      (Cluster.read cluster ~node ~item:"x")
  done;
  Alcotest.(check bool) "fully converged" true (Cluster.converged cluster);
  expect_ok cluster

let test_criterion_3_quiescent_catch_up () =
  (* Criterion 3 (§2.1): once update activity stops, every obsolete
     replica eventually catches up with the newest one. *)
  let cluster = Cluster.create ~seed:3 ~n:4 () in
  Cluster.update cluster ~node:1 ~item:"a" (set "1");
  (* Each later update is made causally after the previous one (the
     cluster converges in between), so there is a single newest replica
     at every point, never a conflict. *)
  ignore (Cluster.sync_until_converged cluster);
  Cluster.update cluster ~node:2 ~item:"a" (set "2");
  ignore (Cluster.sync_until_converged cluster);
  Cluster.update cluster ~node:3 ~item:"a" (set "3");
  ignore (Cluster.sync_until_converged cluster);
  for node = 0 to 3 do
    Alcotest.(check (option string))
      (Printf.sprintf "node %d has newest" node)
      (Some "3")
      (Cluster.read cluster ~node ~item:"a")
  done;
  expect_ok cluster

let test_criterion_3_with_concurrent_histories () =
  (* Two nodes race on the same item before any sync: the conflict must
     be detected (criterion 1) and survive until an administrator acts;
     meanwhile no version is silently lost (criterion 2). *)
  let cluster = Cluster.create ~seed:11 ~n:3 () in
  Cluster.update cluster ~node:0 ~item:"x" (set "left");
  Cluster.update cluster ~node:1 ~item:"x" (set "right");
  for _ = 1 to 5 do
    Cluster.random_pull_round cluster
  done;
  let total = Cluster.total_counters cluster in
  Alcotest.(check bool) "conflict detected somewhere" true (total.conflicts_detected > 0);
  let left_alive =
    List.exists
      (fun node -> Cluster.read cluster ~node ~item:"x" = Some "left")
      [ 0; 1; 2 ]
  in
  let right_alive =
    List.exists
      (fun node -> Cluster.read cluster ~node ~item:"x" = Some "right")
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "left version survives" true left_alive;
  Alcotest.(check bool) "right version survives" true right_alive

let test_resolution_policy_cluster_converges () =
  let resolver ~(local : Edb_core.Message.shipped_item)
      ~(remote : Edb_core.Message.shipped_item) =
    let value s = Option.value ~default:"" (Edb_core.Message.whole_value s) in
    if String.compare (value local) (value remote) >= 0 then value local
    else value remote
  in
  let cluster = Cluster.create ~seed:5 ~policy:(Node.Resolve resolver) ~n:4 () in
  Cluster.update cluster ~node:0 ~item:"x" (set "bbb");
  Cluster.update cluster ~node:1 ~item:"x" (set "aaa");
  Cluster.update cluster ~node:2 ~item:"x" (set "ccc");
  let rounds = Cluster.sync_until_converged cluster in
  Alcotest.(check bool) "converged despite conflicts" true (rounds < 100);
  for node = 0 to 3 do
    Alcotest.(check (option string))
      (Printf.sprintf "node %d has winner" node)
      (Some "ccc")
      (Cluster.read cluster ~node ~item:"x")
  done;
  expect_ok cluster

let test_total_counters_accumulate () =
  let cluster = Cluster.create ~n:3 () in
  Cluster.update cluster ~node:0 ~item:"x" (set "v");
  ignore (Cluster.sync_until_converged cluster);
  let total = Cluster.total_counters cluster in
  Alcotest.(check bool) "updates counted" true (total.updates_applied = 1);
  Alcotest.(check bool) "messages counted" true (total.messages > 0);
  Cluster.reset_counters cluster;
  let zero = Cluster.total_counters cluster in
  Alcotest.(check int) "reset" 0 (Edb_metrics.Counters.total_work zero + zero.messages)

let test_oob_then_converge () =
  (* Mixed workload: out-of-bound traffic must not prevent cluster-wide
     convergence (aux copies drain through intra-node propagation). *)
  let cluster = Cluster.create ~seed:9 ~n:4 () in
  Cluster.update cluster ~node:0 ~item:"hot" (set "h1");
  let (_ : Node.oob_result) =
    Cluster.fetch_out_of_bound cluster ~recipient:2 ~source:0 "hot"
  in
  Cluster.update cluster ~node:2 ~item:"hot" (set "h2");
  Cluster.update cluster ~node:1 ~item:"cold" (set "c1");
  let rounds = Cluster.sync_until_converged cluster in
  Alcotest.(check bool) "converged" true (rounds < 50);
  for node = 0 to 3 do
    Alcotest.(check (option string))
      (Printf.sprintf "node %d hot" node)
      (Some "h2")
      (Cluster.read cluster ~node ~item:"hot")
  done;
  expect_ok cluster

let suite =
  [
    Alcotest.test_case "fresh cluster converged" `Quick test_fresh_cluster_converged;
    Alcotest.test_case "diverged after update" `Quick test_not_converged_after_update;
    Alcotest.test_case "random rounds converge" `Quick test_random_rounds_converge;
    Alcotest.test_case "ring rounds converge (Theorem 5)" `Quick test_ring_rounds_converge;
    Alcotest.test_case "criterion 3: quiescent catch-up" `Quick
      test_criterion_3_quiescent_catch_up;
    Alcotest.test_case "criteria 1&2 under concurrency" `Quick
      test_criterion_3_with_concurrent_histories;
    Alcotest.test_case "resolution policy converges" `Quick
      test_resolution_policy_cluster_converges;
    Alcotest.test_case "counters accumulate" `Quick test_total_counters_accumulate;
    Alcotest.test_case "out-of-bound then converge" `Quick test_oob_then_converge;
  ]

(* Tests for the zipfian sampler. *)

module Prng = Edb_util.Prng
module Zipf = Edb_util.Zipf

let test_probabilities_sum_to_one () =
  let z = Zipf.create ~n:100 ~exponent:1.1 in
  let total = ref 0.0 in
  for rank = 0 to 99 do
    total := !total +. Zipf.probability z rank
  done;
  Alcotest.(check bool) "sums to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_probabilities_decrease () =
  let z = Zipf.create ~n:50 ~exponent:1.0 in
  for rank = 1 to 49 do
    Alcotest.(check bool) "monotone" true
      (Zipf.probability z rank <= Zipf.probability z (rank - 1))
  done

let test_uniform_degenerate () =
  let z = Zipf.create ~n:10 ~exponent:0.0 in
  for rank = 0 to 9 do
    Alcotest.(check bool) "uniform mass" true
      (abs_float (Zipf.probability z rank -. 0.1) < 1e-9)
  done

let test_sample_in_range () =
  let z = Zipf.create ~n:20 ~exponent:1.2 in
  let p = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let r = Zipf.sample z p in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 20)
  done

let test_skew () =
  (* With exponent ~1, rank 0 should be sampled far more often than a
     mid-pack rank. *)
  let z = Zipf.create ~n:1000 ~exponent:1.0 in
  let p = Prng.create ~seed:2 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let r = Zipf.sample z p in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "head much hotter than tail" true
    (counts.(0) > 20 * max 1 counts.(500))

let test_sample_frequency_matches_probability () =
  let z = Zipf.create ~n:5 ~exponent:1.5 in
  let p = Prng.create ~seed:3 in
  let trials = 100_000 in
  let counts = Array.make 5 0 in
  for _ = 1 to trials do
    let r = Zipf.sample z p in
    counts.(r) <- counts.(r) + 1
  done;
  for rank = 0 to 4 do
    let freq = float_of_int counts.(rank) /. float_of_int trials in
    let expected = Zipf.probability z rank in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d frequency" rank)
      true
      (abs_float (freq -. expected) < 0.01)
  done

let test_singleton_universe () =
  let z = Zipf.create ~n:1 ~exponent:2.0 in
  let p = Prng.create ~seed:4 in
  Alcotest.(check int) "only rank" 0 (Zipf.sample z p);
  Alcotest.(check int) "n" 1 (Zipf.n z)

let test_rejects_empty () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~exponent:1.0))

let suite =
  [
    Alcotest.test_case "probabilities sum to one" `Quick test_probabilities_sum_to_one;
    Alcotest.test_case "probabilities decrease" `Quick test_probabilities_decrease;
    Alcotest.test_case "exponent 0 is uniform" `Quick test_uniform_degenerate;
    Alcotest.test_case "samples in range" `Quick test_sample_in_range;
    Alcotest.test_case "skew" `Quick test_skew;
    Alcotest.test_case "frequency matches probability" `Quick
      test_sample_frequency_matches_probability;
    Alcotest.test_case "singleton universe" `Quick test_singleton_universe;
    Alcotest.test_case "rejects empty universe" `Quick test_rejects_empty;
  ]

test/test_dll.ml: Alcotest Edb_util List QCheck2 QCheck_alcotest

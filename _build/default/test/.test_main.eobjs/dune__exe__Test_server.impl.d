test/test_server.ml: Alcotest Array Astring Edb_core Edb_server Edb_store Filename Fun List Sys

test/test_zipf.ml: Alcotest Array Edb_util Printf

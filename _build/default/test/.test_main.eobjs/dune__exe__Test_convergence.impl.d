test/test_convergence.ml: Array Edb_core Edb_store Edb_util Edb_vv List Printf QCheck2 QCheck_alcotest String

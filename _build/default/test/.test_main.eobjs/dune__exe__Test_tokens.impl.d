test/test_tokens.ml: Alcotest Edb_core Edb_store Edb_tokens List Printf QCheck2 QCheck_alcotest

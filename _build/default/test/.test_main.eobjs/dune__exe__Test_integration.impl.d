test/test_integration.ml: Alcotest Array Edb_core Edb_persist Edb_sessions Edb_store Edb_tokens Edb_util Printf

test/test_log.ml: Alcotest Array Edb_log Edb_store Edb_vv Hashtbl List Printf QCheck2 QCheck_alcotest Queue

test/test_message.ml: Alcotest Array Edb_core Edb_log Edb_store Edb_vv

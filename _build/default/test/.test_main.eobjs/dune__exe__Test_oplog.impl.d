test/test_oplog.ml: Alcotest Edb_core Edb_metrics Edb_store List Printf QCheck2 QCheck_alcotest String

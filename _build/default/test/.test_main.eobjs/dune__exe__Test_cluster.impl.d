test/test_cluster.ml: Alcotest Edb_core Edb_metrics Edb_store Edb_vv List Option Printf String

test/test_store.ml: Alcotest Edb_store Edb_vv List QCheck2 QCheck_alcotest String

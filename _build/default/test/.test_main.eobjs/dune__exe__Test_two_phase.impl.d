test/test_two_phase.ml: Alcotest Edb_baselines Edb_store List

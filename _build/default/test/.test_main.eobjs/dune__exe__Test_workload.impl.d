test/test_workload.ml: Alcotest Edb_core Edb_store Edb_util Edb_workload List String

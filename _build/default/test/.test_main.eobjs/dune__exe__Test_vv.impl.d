test/test_vv.ml: Alcotest Array Edb_vv Format QCheck2 QCheck_alcotest

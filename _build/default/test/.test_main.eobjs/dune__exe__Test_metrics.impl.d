test/test_metrics.ml: Alcotest Astring Edb_metrics Format List String

test/test_oob.ml: Alcotest Edb_core Edb_log Edb_store Edb_vv List Printf

test/test_wal.ml: Alcotest Array Astring Bytes Char Edb_core Edb_log Edb_persist Edb_store Edb_vv Filename Fun List Printf QCheck2 QCheck_alcotest String Sys

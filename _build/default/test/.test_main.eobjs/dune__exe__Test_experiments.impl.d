test/test_experiments.ml: Alcotest Edb_core Edb_experiments Edb_metrics Edb_store Edb_workload List Printf String

test/test_sessions.ml: Alcotest Edb_core Edb_sessions Edb_store Edb_vv Format Hashtbl List Option Printf QCheck2 QCheck_alcotest String

test/test_sim.ml: Alcotest Edb_baselines Edb_sim Edb_store Edb_util Edb_workload List Printf

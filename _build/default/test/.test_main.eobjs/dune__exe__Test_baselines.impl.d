test/test_baselines.ml: Alcotest Edb_baselines Edb_store List Printf

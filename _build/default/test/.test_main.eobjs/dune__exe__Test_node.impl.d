test/test_node.ml: Alcotest Array Edb_core Edb_log Edb_metrics Edb_store Edb_vv List Option Printf String

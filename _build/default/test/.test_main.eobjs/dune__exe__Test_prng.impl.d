test/test_prng.ml: Alcotest Array Edb_util Fun List String

(* Tests for token-based pessimistic replica control (paper §2). *)

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Tokens = Edb_tokens.Token_manager
module Operation = Edb_store.Operation

let set v = Operation.Set v

let expect_ok = function
  | Ok hops -> hops
  | Error (`Cycle item) -> Alcotest.fail ("hint cycle on " ^ item)

let expect_invariants tokens =
  match Tokens.check_invariants tokens with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("token invariant violated: " ^ msg)

let test_home_holds_initially () =
  let cluster = Cluster.create ~n:4 () in
  let tokens = Tokens.create cluster in
  let home = Tokens.home tokens "doc" in
  Alcotest.(check int) "holder is home" home (Tokens.holder tokens "doc");
  Alcotest.(check int) "acquire at home is free" 0
    (expect_ok (Tokens.acquire tokens ~node:home ~item:"doc"))

let test_acquire_transfers () =
  let cluster = Cluster.create ~n:4 () in
  let tokens = Tokens.create cluster in
  let home = Tokens.home tokens "doc" in
  let other = (home + 1) mod 4 in
  let hops = expect_ok (Tokens.acquire tokens ~node:other ~item:"doc") in
  Alcotest.(check int) "one hop from fresh hint" 1 hops;
  Alcotest.(check int) "new holder" other (Tokens.holder tokens "doc");
  Alcotest.(check int) "old holder hints at new" other
    (Tokens.hint tokens ~node:home ~item:"doc");
  Alcotest.(check int) "transfer counted" 1 (Tokens.transfers tokens);
  expect_invariants tokens

let test_reacquire_is_free () =
  let cluster = Cluster.create ~n:4 () in
  let tokens = Tokens.create cluster in
  let (_ : int) = expect_ok (Tokens.acquire tokens ~node:2 ~item:"doc") in
  Alcotest.(check int) "already held" 0
    (expect_ok (Tokens.acquire tokens ~node:2 ~item:"doc"))

let test_chain_chase_and_compression () =
  let cluster = Cluster.create ~n:6 () in
  let tokens = Tokens.create cluster in
  let home = Tokens.home tokens "doc" in
  (* Move the token along a chain of distinct nodes. *)
  let a = (home + 1) mod 6 and b = (home + 2) mod 6 and c = (home + 3) mod 6 in
  let (_ : int) = expect_ok (Tokens.acquire tokens ~node:a ~item:"doc") in
  let (_ : int) = expect_ok (Tokens.acquire tokens ~node:b ~item:"doc") in
  let (_ : int) = expect_ok (Tokens.acquire tokens ~node:c ~item:"doc") in
  expect_invariants tokens;
  (* A node with the stale default hint still reaches the holder:
     home -> a -> b -> c was compressed along the way, so the chase from
     the default hint (home) is short. *)
  let d = (home + 4) mod 6 in
  let hops = expect_ok (Tokens.acquire tokens ~node:d ~item:"doc") in
  Alcotest.(check bool) "bounded chase" true (hops <= 3);
  Alcotest.(check int) "d now holds" d (Tokens.holder tokens "doc");
  (* After compression, everyone consulted points at d directly. *)
  Alcotest.(check int) "home compressed" d (Tokens.hint tokens ~node:home ~item:"doc");
  expect_invariants tokens

let test_token_carries_fresh_copy () =
  let cluster = Cluster.create ~n:3 () in
  let tokens = Tokens.create cluster in
  let home = Tokens.home tokens "doc" in
  let (_ : int) = expect_ok (Tokens.update tokens ~node:home ~item:"doc" (set "v1")) in
  let other = (home + 1) mod 3 in
  let (_ : int) = expect_ok (Tokens.acquire tokens ~node:other ~item:"doc") in
  (* The grant delivered v1 out of bound: the new holder reads it
     immediately, before any anti-entropy ran. *)
  Alcotest.(check (option string)) "fresh copy travelled with the token" (Some "v1")
    (Cluster.read cluster ~node:other ~item:"doc")

let test_token_updates_never_conflict () =
  let cluster = Cluster.create ~seed:3 ~n:4 () in
  let tokens = Tokens.create cluster in
  (* Heavy contention: every node updates the same item in turn, with
     occasional anti-entropy in between. *)
  for round = 1 to 10 do
    for node = 0 to 3 do
      let (_ : int) =
        expect_ok
          (Tokens.update tokens ~node ~item:"contended"
             (set (Printf.sprintf "r%d-n%d" round node)))
      in
      ()
    done;
    Cluster.random_pull_round cluster
  done;
  let rounds = Cluster.sync_until_converged cluster in
  Alcotest.(check bool) "converged" true (rounds < 100);
  Alcotest.(check int) "zero conflicts under tokens" 0
    (Cluster.total_counters cluster).conflicts_detected;
  (* The final value is the last token-ordered update. *)
  Alcotest.(check (option string)) "last writer's value" (Some "r10-n3")
    (Cluster.read cluster ~node:0 ~item:"contended");
  expect_invariants tokens

let test_without_tokens_same_workload_conflicts () =
  (* The control experiment: the identical contended workload without
     token protection produces conflicts. *)
  let cluster = Cluster.create ~seed:3 ~n:4 () in
  for round = 1 to 3 do
    for node = 0 to 3 do
      Cluster.update cluster ~node ~item:"contended"
        (set (Printf.sprintf "r%d-n%d" round node))
    done;
    Cluster.random_pull_round cluster
  done;
  Alcotest.(check bool) "conflicts without tokens" true
    ((Cluster.total_counters cluster).conflicts_detected > 0)

let test_distinct_items_distinct_tokens () =
  let cluster = Cluster.create ~n:4 () in
  let tokens = Tokens.create cluster in
  let (_ : int) = expect_ok (Tokens.acquire tokens ~node:1 ~item:"a") in
  let (_ : int) = expect_ok (Tokens.acquire tokens ~node:2 ~item:"b") in
  Alcotest.(check int) "a held by 1" 1 (Tokens.holder tokens "a");
  Alcotest.(check int) "b held by 2" 2 (Tokens.holder tokens "b");
  expect_invariants tokens

(* Property: any acquisition script preserves the single-holder
   invariant, and updates through tokens never conflict. *)
let prop_token_discipline =
  QCheck2.Gen.(
    let action = triple (int_bound 3) (int_bound 2) bool in
    QCheck2.Test.make ~name:"token discipline: one holder, zero conflicts" ~count:100
      (list_size (int_range 1 60) action)
      (fun script ->
        let cluster = Cluster.create ~seed:7 ~n:4 () in
        let tokens = Tokens.create cluster in
        let ok = ref true in
        List.iteri
          (fun i (node, item_rank, do_pull) ->
            let item = Printf.sprintf "i%d" item_rank in
            (match Tokens.update tokens ~node ~item (set (Printf.sprintf "v%d" i)) with
            | Ok _ -> ()
            | Error (`Cycle _) -> ok := false);
            if do_pull then ignore (Cluster.pull cluster ~recipient:node ~source:((node + 1) mod 4)))
          script;
        !ok
        && Tokens.check_invariants tokens = Ok ()
        && (Cluster.total_counters cluster).conflicts_detected = 0
        && Cluster.sync_until_converged ~max_rounds:500 cluster <= 500))

let suite =
  [
    Alcotest.test_case "home holds initially" `Quick test_home_holds_initially;
    Alcotest.test_case "acquire transfers" `Quick test_acquire_transfers;
    Alcotest.test_case "reacquire is free" `Quick test_reacquire_is_free;
    Alcotest.test_case "chain chase and compression" `Quick
      test_chain_chase_and_compression;
    Alcotest.test_case "token carries fresh copy" `Quick test_token_carries_fresh_copy;
    Alcotest.test_case "token updates never conflict" `Quick
      test_token_updates_never_conflict;
    Alcotest.test_case "same workload without tokens conflicts" `Quick
      test_without_tokens_same_workload_conflicts;
    Alcotest.test_case "distinct items, distinct tokens" `Quick
      test_distinct_items_distinct_tokens;
    QCheck_alcotest.to_alcotest prop_token_discipline;
  ]

(* Tests for the §8 baseline protocols: each converges under its own
   rules, and each exhibits the specific weakness the paper ascribes to
   it. *)

module Demers = Edb_baselines.Demers
module Lotus = Edb_baselines.Lotus
module Oracle = Edb_baselines.Oracle_push
module Wuu = Edb_baselines.Wuu_bernstein
module Ficus = Edb_baselines.Ficus
module Driver = Edb_baselines.Driver
module Operation = Edb_store.Operation

let set v = Operation.Set v

let universe k = List.init k (Printf.sprintf "u%02d")

(* ---------- Demers-style per-item anti-entropy ---------- *)

let test_demers_propagates () =
  let d = Demers.create ~n:3 ~universe:(universe 5) in
  Demers.update d ~node:0 ~item:"u01" (set "v");
  Demers.session d ~src:0 ~dst:1;
  Demers.session d ~src:1 ~dst:2;
  Alcotest.(check (option string)) "transitive copy" (Some "v")
    (Demers.read d ~node:2 ~item:"u01");
  Alcotest.(check bool) "converged" true (Demers.converged d)

let test_demers_cost_linear_in_universe () =
  (* The paper's core complaint: even a no-op session examines every
     item. *)
  let d = Demers.create ~n:2 ~universe:(universe 40) in
  let driver = Demers.driver d in
  Demers.session d ~src:0 ~dst:1;
  let total = driver.Driver.total_counters () in
  Alcotest.(check int) "examined all 40 items" 40 total.items_examined;
  Alcotest.(check int) "compared all 40 items" 40 total.vv_comparisons

let test_demers_detects_conflicts () =
  let d = Demers.create ~n:2 ~universe:(universe 3) in
  Demers.update d ~node:0 ~item:"u00" (set "a");
  Demers.update d ~node:1 ~item:"u00" (set "b");
  Demers.session d ~src:0 ~dst:1;
  Alcotest.(check bool) "conflict flagged" true (Demers.conflicts_detected d > 0);
  Alcotest.(check (option string)) "no silent overwrite" (Some "b")
    (Demers.read d ~node:1 ~item:"u00")

(* ---------- Lotus Notes ---------- *)

let test_lotus_propagates () =
  let l = Lotus.create ~n:3 ~universe:(universe 4) in
  Lotus.update l ~node:0 ~item:"u01" (set "v");
  Lotus.session l ~src:0 ~dst:1;
  Lotus.session l ~src:1 ~dst:2;
  Alcotest.(check (option string)) "forwarded" (Some "v")
    (Lotus.read l ~node:2 ~item:"u01");
  Alcotest.(check bool) "converged" true (Lotus.converged l)

let test_lotus_noop_when_untouched () =
  let l = Lotus.create ~n:2 ~universe:(universe 10) in
  let driver = Lotus.driver l in
  Lotus.session l ~src:0 ~dst:1;
  let total = driver.Driver.total_counters () in
  (* Nothing ever changed: the O(1) fast path applies, no scan. *)
  Alcotest.(check int) "no items examined" 0 total.items_examined;
  Alcotest.(check int) "counted as noop" 1 total.noop_sessions

let test_lotus_scans_when_indirectly_identical () =
  (* §8.1: replicas identical through indirect propagation still cost a
     full O(N) scan under Lotus. *)
  let l = Lotus.create ~n:3 ~universe:(universe 25) in
  Lotus.update l ~node:0 ~item:"u03" (set "v");
  Lotus.session l ~src:0 ~dst:1;
  Lotus.session l ~src:0 ~dst:2;
  (* 1 and 2 are now identical; a session between them still scans. *)
  let driver = Lotus.driver l in
  driver.Driver.reset_counters ();
  Lotus.session l ~src:1 ~dst:2;
  let total = driver.Driver.total_counters () in
  Alcotest.(check int) "full scan of 25 items" 25 total.items_examined;
  Alcotest.(check int) "nothing actually copied" 0 total.items_copied

let test_lotus_loses_concurrent_update () =
  (* §8.1 final paragraph, reproduced exactly: i makes two updates, j
     makes one conflicting update; i's copy has the higher sequence
     number, so it silently overrides j's. *)
  let l = Lotus.create ~n:2 ~universe:(universe 2) in
  Lotus.update l ~node:0 ~item:"u00" (set "i-first");
  Lotus.update l ~node:0 ~item:"u00" (set "i-second");
  Lotus.update l ~node:1 ~item:"u00" (set "j-version");
  Lotus.session l ~src:0 ~dst:1;
  (* j's conflicting update is gone without any conflict report. *)
  Alcotest.(check (option string)) "j silently overridden" (Some "i-second")
    (Lotus.read l ~node:1 ~item:"u00");
  Alcotest.(check int) "seqno advanced" 2 (Lotus.sequence_number l ~node:1 ~item:"u00")

(* ---------- Oracle symmetric replication ---------- *)

let test_oracle_push_delivers () =
  let o = Oracle.create ~n:3 in
  Oracle.update o ~node:0 ~item:"x" (set "v");
  Oracle.push_all o ~origin:0;
  Alcotest.(check (option string)) "node 1 got it" (Some "v") (Oracle.read o ~node:1 ~item:"x");
  Alcotest.(check (option string)) "node 2 got it" (Some "v") (Oracle.read o ~node:2 ~item:"x");
  Alcotest.(check bool) "converged" true (Oracle.converged o)

let test_oracle_incremental_cursor () =
  let o = Oracle.create ~n:2 in
  Oracle.update o ~node:0 ~item:"x" (set "v1");
  Oracle.push_to o ~origin:0 ~dst:1;
  Oracle.update o ~node:0 ~item:"x" (set "v2");
  Oracle.push_to o ~origin:0 ~dst:1;
  Alcotest.(check (option string)) "second push carries only the delta" (Some "v2")
    (Oracle.read o ~node:1 ~item:"x")

let test_oracle_stranded_by_crash () =
  (* §8.2: originator crashes after reaching only node 1; node 2 stays
     obsolete — nobody forwards — until the originator recovers. *)
  let o = Oracle.create ~n:3 in
  Oracle.update o ~node:0 ~item:"x" (set "v");
  Oracle.push_to o ~origin:0 ~dst:1;
  Oracle.crash o ~node:0;
  (* Node 1 has the data but will not forward it. *)
  Oracle.push_to o ~origin:1 ~dst:2;
  Alcotest.(check (option string)) "node 2 still obsolete" None
    (Oracle.read o ~node:2 ~item:"x");
  Alcotest.(check bool) "node 2 observably stale" true (Oracle.is_stale o ~node:2);
  (* Recovery completes the propagation. *)
  Oracle.recover o ~node:0;
  Oracle.push_all o ~origin:0;
  Alcotest.(check (option string)) "after recovery" (Some "v")
    (Oracle.read o ~node:2 ~item:"x");
  Alcotest.(check bool) "converged" true (Oracle.converged o)

(* ---------- Wuu & Bernstein ---------- *)

let test_wuu_gossip_delivers () =
  let w = Wuu.create ~n:3 in
  Wuu.update w ~node:0 ~item:"x" (set "v");
  Wuu.session w ~src:0 ~dst:1;
  Wuu.session w ~src:1 ~dst:2;
  Alcotest.(check (option string)) "transitive gossip" (Some "v")
    (Wuu.read w ~node:2 ~item:"x")

let test_wuu_no_duplicate_application () =
  let w = Wuu.create ~n:2 in
  Wuu.update w ~node:0 ~item:"x" (set "v");
  Wuu.session w ~src:0 ~dst:1;
  Wuu.session w ~src:0 ~dst:1;
  let driver = Wuu.driver w in
  let total = driver.Driver.total_counters () in
  Alcotest.(check int) "applied once" 1 total.items_copied

let test_wuu_gc_after_full_knowledge () =
  let w = Wuu.create ~n:2 in
  Wuu.update w ~node:0 ~item:"x" (set "v");
  Wuu.session w ~src:0 ~dst:1;
  (* 1 knows; 0 learns that 1 knows on the reverse gossip; both can GC. *)
  Wuu.session w ~src:1 ~dst:0;
  Alcotest.(check int) "node 0 GC'd" 0 (Wuu.log_length w ~node:0);
  Wuu.session w ~src:0 ~dst:1;
  Alcotest.(check int) "node 1 GC'd" 0 (Wuu.log_length w ~node:1)

let test_wuu_overhead_grows_with_updates () =
  (* Footnote 4: the gossip cost scans every retained record, i.e. it
     grows with the number of updates, even when they all hit one item. *)
  let w = Wuu.create ~n:2 in
  for _ = 1 to 30 do
    Wuu.update w ~node:0 ~item:"hot" (set "v")
  done;
  let driver = Wuu.driver w in
  driver.Driver.reset_counters ();
  Wuu.session w ~src:0 ~dst:1;
  let total = driver.Driver.total_counters () in
  Alcotest.(check bool) "examined all 30 records" true (total.log_records_examined >= 30)

let test_wuu_convergence_lww () =
  let w = Wuu.create ~n:3 in
  Wuu.update w ~node:0 ~item:"x" (set "a");
  Wuu.update w ~node:1 ~item:"x" (set "b");
  (* Full gossip exchange in both directions. *)
  List.iter
    (fun (src, dst) -> Wuu.session w ~src ~dst)
    [ (0, 1); (1, 2); (2, 0); (0, 1); (1, 2); (2, 0) ];
  Alcotest.(check bool) "knowledge converged" true (Wuu.converged w);
  let v0 = Wuu.read w ~node:0 ~item:"x" in
  let v1 = Wuu.read w ~node:1 ~item:"x" in
  let v2 = Wuu.read w ~node:2 ~item:"x" in
  Alcotest.(check bool) "values agree" true (v0 = v1 && v1 = v2)

(* ---------- Ficus ---------- *)

let test_ficus_notification_path () =
  let f = Ficus.create ~n:3 ~universe:(universe 4) in
  Ficus.update f ~node:0 ~item:"u01" (set "v");
  Ficus.notify f ~origin:0;
  Alcotest.(check (option string)) "peer 1 pulled" (Some "v")
    (Ficus.read f ~node:1 ~item:"u01");
  Alcotest.(check (option string)) "peer 2 pulled" (Some "v")
    (Ficus.read f ~node:2 ~item:"u01");
  Alcotest.(check bool) "converged" true (Ficus.converged f)

let test_ficus_missed_notification_needs_reconcile () =
  let f = Ficus.create ~n:3 ~universe:(universe 4) in
  Ficus.crash f ~node:2;
  Ficus.update f ~node:0 ~item:"u01" (set "v");
  Ficus.notify f ~origin:0;
  Ficus.recover f ~node:2;
  (* The notification is never retried: 2 is still stale. *)
  Alcotest.(check (option string)) "missed the one-shot notify" (Some "")
    (Ficus.read f ~node:2 ~item:"u01");
  (* Reconciliation mops up — at O(N) cost. *)
  let driver = Ficus.driver f in
  driver.Driver.reset_counters ();
  Ficus.reconcile f ~src:0 ~dst:2;
  Alcotest.(check (option string)) "reconciled" (Some "v")
    (Ficus.read f ~node:2 ~item:"u01");
  let total = driver.Driver.total_counters () in
  Alcotest.(check int) "reconcile scanned the universe" 4 total.items_examined

let test_ficus_conflict_flagged () =
  let f = Ficus.create ~n:2 ~universe:(universe 2) in
  Ficus.update f ~node:0 ~item:"u00" (set "a");
  Ficus.update f ~node:1 ~item:"u00" (set "b");
  Ficus.reconcile f ~src:0 ~dst:1;
  Alcotest.(check bool) "conflict detected" true (Ficus.conflicts_detected f > 0)

(* ---------- Driver facade ---------- *)

let test_drivers_uniform_behaviour () =
  (* The same tiny scenario through every driver: one update at node 0,
     sessions 0->1 then 1->2 (0->2 directly for Oracle, which does not
     forward), then everyone must read the value. *)
  let check_driver (driver : Driver.t) ~forwards =
    driver.Driver.update ~node:0 ~item:"u00" ~op:(set "v");
    (match driver.Driver.name with
    | "ficus" ->
      (* Ficus notifies on update; peers are already current. *)
      ()
    | _ ->
      driver.Driver.session ~src:0 ~dst:1;
      if forwards then driver.Driver.session ~src:1 ~dst:2
      else driver.Driver.session ~src:0 ~dst:2);
    for node = 0 to 2 do
      Alcotest.(check (option string))
        (Printf.sprintf "%s node %d" driver.Driver.name node)
        (Some "v")
        (driver.Driver.read ~node ~item:"u00")
    done;
    Alcotest.(check bool)
      (driver.Driver.name ^ " converged")
      true
      (driver.Driver.converged ())
  in
  let u = universe 3 in
  check_driver (Demers.driver (Demers.create ~n:3 ~universe:u)) ~forwards:true;
  check_driver (Lotus.driver (Lotus.create ~n:3 ~universe:u)) ~forwards:true;
  check_driver (Oracle.driver (Oracle.create ~n:3)) ~forwards:false;
  check_driver (Wuu.driver (Wuu.create ~n:3)) ~forwards:true;
  check_driver (Ficus.driver (Ficus.create ~n:3 ~universe:u)) ~forwards:true;
  let _, epidemic = Edb_baselines.Epidemic_driver.create ~n:3 () in
  check_driver epidemic ~forwards:true

let suite =
  [
    Alcotest.test_case "demers propagates" `Quick test_demers_propagates;
    Alcotest.test_case "demers cost linear in N" `Quick test_demers_cost_linear_in_universe;
    Alcotest.test_case "demers detects conflicts" `Quick test_demers_detects_conflicts;
    Alcotest.test_case "lotus propagates" `Quick test_lotus_propagates;
    Alcotest.test_case "lotus noop when untouched" `Quick test_lotus_noop_when_untouched;
    Alcotest.test_case "lotus scans when indirectly identical" `Quick
      test_lotus_scans_when_indirectly_identical;
    Alcotest.test_case "lotus loses concurrent update" `Quick
      test_lotus_loses_concurrent_update;
    Alcotest.test_case "oracle push delivers" `Quick test_oracle_push_delivers;
    Alcotest.test_case "oracle incremental cursor" `Quick test_oracle_incremental_cursor;
    Alcotest.test_case "oracle stranded by crash" `Quick test_oracle_stranded_by_crash;
    Alcotest.test_case "wuu gossip delivers" `Quick test_wuu_gossip_delivers;
    Alcotest.test_case "wuu no duplicate application" `Quick
      test_wuu_no_duplicate_application;
    Alcotest.test_case "wuu GC after full knowledge" `Quick test_wuu_gc_after_full_knowledge;
    Alcotest.test_case "wuu overhead grows with updates" `Quick
      test_wuu_overhead_grows_with_updates;
    Alcotest.test_case "wuu convergence via LWW" `Quick test_wuu_convergence_lww;
    Alcotest.test_case "ficus notification path" `Quick test_ficus_notification_path;
    Alcotest.test_case "ficus missed notification" `Quick
      test_ficus_missed_notification_needs_reconcile;
    Alcotest.test_case "ficus conflict flagged" `Quick test_ficus_conflict_flagged;
    Alcotest.test_case "drivers uniform behaviour" `Quick test_drivers_uniform_behaviour;
  ]

(* Tests for the deterministic generator. *)

module Prng = Edb_util.Prng

let test_determinism () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:8 in
  Alcotest.(check bool) "different seeds differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_int_bounds () =
  let p = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Prng.int p 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10)
  done

let test_int_rejects_nonpositive () =
  let p = Prng.create ~seed:1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let test_int_in_range () =
  let p = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int_in_range p ~lo:5 ~hi:9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_int_covers_range () =
  let p = Prng.create ~seed:5 in
  let seen = Array.make 6 false in
  for _ = 1 to 2000 do
    seen.(Prng.int p 6) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let p = Prng.create ~seed:2 in
  for _ = 1 to 1000 do
    let v = Prng.float p 3.0 in
    Alcotest.(check bool) "in [0,3)" true (v >= 0.0 && v < 3.0)
  done

let test_chance_extremes () =
  let p = Prng.create ~seed:4 in
  Alcotest.(check bool) "p=0 never" false (Prng.chance p 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.chance p 1.0)

let test_chance_frequency () =
  let p = Prng.create ~seed:6 in
  let hits = ref 0 in
  let trials = 10_000 in
  for _ = 1 to trials do
    if Prng.chance p 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "roughly 0.3" true (freq > 0.25 && freq < 0.35)

let test_exponential_positive () =
  let p = Prng.create ~seed:8 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Prng.exponential p ~mean:2.0 > 0.0)
  done

let test_exponential_mean () =
  let p = Prng.create ~seed:9 in
  let trials = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to trials do
    sum := !sum +. Prng.exponential p ~mean:5.0
  done;
  let mean = !sum /. float_of_int trials in
  Alcotest.(check bool) "mean near 5" true (mean > 4.5 && mean < 5.5)

let test_shuffle_permutes () =
  let p = Prng.create ~seed:10 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_split_independence () =
  let parent = Prng.create ~seed:11 in
  let child = Prng.split parent in
  (* The child stream should not coincide with the parent's next
     outputs. *)
  let child_values = List.init 10 (fun _ -> Prng.bits64 child) in
  let parent_values = List.init 10 (fun _ -> Prng.bits64 parent) in
  Alcotest.(check bool) "streams differ" true (child_values <> parent_values)

let test_copy_is_independent () =
  let a = Prng.create ~seed:12 in
  let b = Prng.copy a in
  let va = Prng.bits64 a in
  let vb = Prng.bits64 b in
  Alcotest.(check int64) "copy starts at same state" va vb;
  (* Advancing one does not affect the other. *)
  let (_ : int64) = Prng.bits64 a in
  let v1 = Prng.bits64 a and v2 = Prng.bits64 b in
  Alcotest.(check bool) "diverged positions" true (v1 <> v2 || Prng.bits64 b <> v1)

let test_pick () =
  let p = Prng.create ~seed:13 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    let v = Prng.pick p a in
    Alcotest.(check bool) "element of array" true (Array.exists (String.equal v) a)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int rejects non-positive" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "int_in_range" `Quick test_int_in_range;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
    Alcotest.test_case "chance frequency" `Quick test_chance_frequency;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy independence" `Quick test_copy_is_independent;
    Alcotest.test_case "pick" `Quick test_pick;
  ]

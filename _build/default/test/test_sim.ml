(* Tests for the discrete-event simulator: event queue ordering, network
   semantics, crash/recovery, and end-to-end convergence over drivers. *)

module Event_queue = Edb_sim.Event_queue
module Network = Edb_sim.Network
module Engine = Edb_sim.Engine
module Driver = Edb_baselines.Driver
module Operation = Edb_store.Operation

let set v = Operation.Set v

(* ---------- Event queue ---------- *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let order = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check (list (option (pair (float 0.0) string))))
    "min-heap order"
    [ Some (1.0, "a"); Some (2.0, "b"); Some (3.0, "c") ]
    order

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1.0 "first";
  Event_queue.push q ~time:1.0 "second";
  Event_queue.push q ~time:1.0 "third";
  let payloads =
    List.init 3 (fun _ -> match Event_queue.pop q with Some (_, p) -> p | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ]
    payloads

let test_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:5.0 5;
  Event_queue.push q ~time:1.0 1;
  Alcotest.(check (option (pair (float 0.0) int))) "pop 1" (Some (1.0, 1))
    (Event_queue.pop q);
  Event_queue.push q ~time:3.0 3;
  Alcotest.(check (option (pair (float 0.0) int))) "pop 3" (Some (3.0, 3))
    (Event_queue.pop q);
  Alcotest.(check (option (pair (float 0.0) int))) "pop 5" (Some (5.0, 5))
    (Event_queue.pop q);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_queue_large_random () =
  let q = Event_queue.create () in
  let prng = Edb_util.Prng.create ~seed:99 in
  for _ = 1 to 1000 do
    Event_queue.push q ~time:(Edb_util.Prng.float prng 100.0) ()
  done;
  let rec drain last count =
    match Event_queue.pop q with
    | None -> count
    | Some (time, ()) ->
      Alcotest.(check bool) "non-decreasing" true (time >= last);
      drain time (count + 1)
  in
  Alcotest.(check int) "all drained" 1000 (drain neg_infinity 0)

(* ---------- Network ---------- *)

let test_network_defaults () =
  let net = Network.create () in
  let prng = Edb_util.Prng.create ~seed:1 in
  Alcotest.(check (float 0.0)) "unit latency" 1.0 (Network.delay net prng);
  Alcotest.(check bool) "reliable" false (Network.lost net prng)

let test_network_partition () =
  let net = Network.create () in
  Network.partition net 1 2;
  Alcotest.(check bool) "blocked" true (Network.blocked net 1 2);
  Alcotest.(check bool) "symmetric" true (Network.blocked net 2 1);
  Alcotest.(check bool) "others fine" false (Network.blocked net 0 1);
  Network.heal net 2 1;
  Alcotest.(check bool) "healed" false (Network.blocked net 1 2)

let test_network_loss () =
  let net = Network.create ~loss_probability:1.0 () in
  let prng = Edb_util.Prng.create ~seed:1 in
  Alcotest.(check bool) "always lost" true (Network.lost net prng)

(* ---------- Engine over the paper's protocol ---------- *)

let epidemic_engine ?seed ?network n =
  let _, driver = Edb_baselines.Epidemic_driver.create ~n () in
  Engine.create ?seed ?network ~driver ()

let test_engine_basic_convergence () =
  let engine = epidemic_engine 4 in
  Engine.schedule engine ~at:0.0
    (Engine.User_update { node = 0; item = "x"; op = set "v" });
  Engine.schedule engine ~at:0.5
    (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Random_peer });
  (match Engine.run_until_converged engine ~check_every:1.0 ~deadline:100.0 with
  | Some time -> Alcotest.(check bool) "converged quickly" true (time < 50.0)
  | None -> Alcotest.fail "did not converge");
  let driver = Engine.driver engine in
  for node = 0 to 3 do
    Alcotest.(check (option string))
      (Printf.sprintf "node %d" node)
      (Some "v")
      (driver.Driver.read ~node ~item:"x")
  done

let test_engine_ring_policy () =
  let engine = epidemic_engine 5 in
  Engine.schedule engine ~at:0.0
    (Engine.User_update { node = 2; item = "x"; op = set "v" });
  Engine.schedule engine ~at:0.5
    (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Ring });
  (match Engine.run_until_converged engine ~check_every:1.0 ~deadline:100.0 with
  | Some _ -> ()
  | None -> Alcotest.fail "ring schedule must converge (Theorem 5)")

let test_engine_crash_blocks_then_recovery () =
  let engine = epidemic_engine ~seed:5 3 in
  Engine.schedule engine ~at:0.0 (Engine.Crash 2);
  Engine.schedule engine ~at:0.1
    (Engine.User_update { node = 0; item = "x"; op = set "v" });
  Engine.schedule engine ~at:0.5
    (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Ring });
  Engine.run_until engine 20.0;
  (* Node 2 is down: the cluster cannot be fully converged for it. *)
  let driver = Engine.driver engine in
  Alcotest.(check (option string)) "crashed node missed it" None
    (driver.Driver.read ~node:2 ~item:"x");
  Engine.schedule engine ~at:20.5 (Engine.Recover 2);
  (match Engine.run_until_converged engine ~check_every:1.0 ~deadline:100.0 with
  | Some _ -> ()
  | None -> Alcotest.fail "must converge after recovery");
  Alcotest.(check (option string)) "caught up after recovery" (Some "v")
    (driver.Driver.read ~node:2 ~item:"x")

let test_engine_partition_heals () =
  let network = Network.create () in
  let engine =
    let _, driver = Edb_baselines.Epidemic_driver.create ~seed:3 ~n:3 () in
    Engine.create ~seed:4 ~network ~driver ()
  in
  (* Isolate node 2 from everyone. *)
  Network.partition network 0 2;
  Network.partition network 1 2;
  Engine.schedule engine ~at:0.0
    (Engine.User_update { node = 0; item = "x"; op = set "v" });
  Engine.schedule engine ~at:0.5
    (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Random_peer });
  Engine.run_until engine 30.0;
  let driver = Engine.driver engine in
  Alcotest.(check (option string)) "partitioned node stale" None
    (driver.Driver.read ~node:2 ~item:"x");
  Network.heal_all network;
  (match Engine.run_until_converged engine ~check_every:1.0 ~deadline:100.0 with
  | Some _ -> ()
  | None -> Alcotest.fail "must converge after healing");
  Alcotest.(check (option string)) "after healing" (Some "v")
    (driver.Driver.read ~node:2 ~item:"x")

let test_engine_lossy_network_still_converges () =
  let network = Network.create ~loss_probability:0.5 () in
  let engine =
    let _, driver = Edb_baselines.Epidemic_driver.create ~seed:6 ~n:4 () in
    Engine.create ~seed:7 ~network ~driver ()
  in
  Engine.schedule engine ~at:0.0
    (Engine.User_update { node = 1; item = "x"; op = set "v" });
  Engine.schedule engine ~at:0.5
    (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Random_peer });
  (match Engine.run_until_converged engine ~check_every:5.0 ~deadline:500.0 with
  | Some _ -> ()
  | None -> Alcotest.fail "anti-entropy must beat 50% loss");
  Alcotest.(check bool) "some sessions were lost" true (Engine.sessions_lost engine > 0)

let test_engine_determinism () =
  let run () =
    let engine = epidemic_engine ~seed:11 4 in
    Engine.schedule engine ~at:0.0
      (Engine.User_update { node = 0; item = "x"; op = set "v" });
    Engine.schedule engine ~at:0.5
      (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Random_peer });
    Engine.run_until engine 25.0;
    let driver = Engine.driver engine in
    let total = driver.Driver.total_counters () in
    (Engine.sessions_attempted engine, total.messages, total.items_copied)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_engine_rejects_past_events () =
  let engine = epidemic_engine 2 in
  Engine.run_until engine 10.0;
  Alcotest.check_raises "past event" (Invalid_argument "Engine.schedule: event in the past")
    (fun () -> Engine.schedule engine ~at:5.0 (Engine.Crash 0))

let test_engine_custom_event () =
  let engine = epidemic_engine 2 in
  let fired = ref None in
  Engine.schedule engine ~at:3.0 (Engine.Custom (fun e -> fired := Some (Engine.now e)));
  Engine.run_until engine 10.0;
  Alcotest.(check (option (float 0.0))) "fired at its time" (Some 3.0) !fired

(* The engine drives every baseline through the same driver facade. *)
let test_engine_over_baselines () =
  let check name make_driver =
    let driver = make_driver () in
    let engine = Engine.create ~seed:9 ~driver () in
    Engine.schedule engine ~at:0.0
      (Engine.User_update { node = 0; item = "item-000000"; op = set "v" });
    Engine.schedule engine ~at:0.5
      (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Random_peer });
    match Engine.run_until_converged engine ~check_every:1.0 ~deadline:300.0 with
    | Some _ ->
      for node = 0 to 3 do
        Alcotest.(check (option string))
          (Printf.sprintf "%s node %d" name node)
          (Some "v")
          (driver.Driver.read ~node ~item:"item-000000")
      done
    | None -> Alcotest.fail (name ^ " did not converge under the engine")
  in
  let universe = Edb_workload.Workload.universe 10 in
  check "demers" (fun () ->
      Edb_baselines.Demers.driver (Edb_baselines.Demers.create ~n:4 ~universe));
  check "lotus" (fun () ->
      Edb_baselines.Lotus.driver (Edb_baselines.Lotus.create ~n:4 ~universe));
  check "wuu" (fun () ->
      Edb_baselines.Wuu_bernstein.driver (Edb_baselines.Wuu_bernstein.create ~n:4));
  check "two-phase" (fun () ->
      Edb_baselines.Two_phase_gossip.driver (Edb_baselines.Two_phase_gossip.create ~n:4));
  check "ficus" (fun () ->
      Edb_baselines.Ficus.driver (Edb_baselines.Ficus.create ~n:4 ~universe))

(* Oracle under the engine: random sessions DO eventually deliver
   (every node periodically pushes its own queue), but a crashed
   originator stalls everything — the §8.2 dynamic, engine-driven. *)
let test_engine_oracle_originator_crash () =
  let oracle = Edb_baselines.Oracle_push.create ~n:4 in
  let driver = Edb_baselines.Oracle_push.driver oracle in
  let engine = Engine.create ~seed:10 ~driver () in
  Engine.schedule engine ~at:0.0
    (Engine.User_update { node = 0; item = "x"; op = set "v" });
  Engine.schedule engine ~at:0.1 (Engine.Crash 0);
  Engine.schedule engine ~at:0.5
    (Engine.Anti_entropy_round { period = 1.0; policy = Engine.Random_peer });
  (match Engine.run_until_converged engine ~check_every:5.0 ~deadline:100.0 with
  | None -> ()
  | Some t -> Alcotest.fail (Printf.sprintf "oracle must stall, converged at %.0f" t));
  Engine.schedule engine ~at:(Engine.now engine) (Engine.Recover 0);
  match Engine.run_until_converged engine ~check_every:5.0 ~deadline:300.0 with
  | Some _ -> ()
  | None -> Alcotest.fail "oracle must converge after recovery"

let suite =
  [
    Alcotest.test_case "engine over all baselines" `Quick test_engine_over_baselines;
    Alcotest.test_case "engine oracle originator crash" `Quick
      test_engine_oracle_originator_crash;
    Alcotest.test_case "queue time order" `Quick test_queue_time_order;
    Alcotest.test_case "queue FIFO on ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue interleaved" `Quick test_queue_interleaved;
    Alcotest.test_case "queue large random" `Quick test_queue_large_random;
    Alcotest.test_case "network defaults" `Quick test_network_defaults;
    Alcotest.test_case "network partition" `Quick test_network_partition;
    Alcotest.test_case "network loss" `Quick test_network_loss;
    Alcotest.test_case "engine basic convergence" `Quick test_engine_basic_convergence;
    Alcotest.test_case "engine ring policy" `Quick test_engine_ring_policy;
    Alcotest.test_case "engine crash then recovery" `Quick
      test_engine_crash_blocks_then_recovery;
    Alcotest.test_case "engine partition heals" `Quick test_engine_partition_heals;
    Alcotest.test_case "engine lossy network converges" `Quick
      test_engine_lossy_network_still_converges;
    Alcotest.test_case "engine determinism" `Quick test_engine_determinism;
    Alcotest.test_case "engine rejects past events" `Quick test_engine_rejects_past_events;
    Alcotest.test_case "engine custom event" `Quick test_engine_custom_event;
  ]

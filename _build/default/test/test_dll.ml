(* Tests for the intrusive doubly-linked list (substrate of paper Fig. 1). *)

module Dll = Edb_util.Dll

let check_list msg expected t = Alcotest.(check (list int)) msg expected (Dll.to_list t)

let test_empty () =
  let t = Dll.create () in
  Alcotest.(check bool) "empty" true (Dll.is_empty t);
  Alcotest.(check int) "length" 0 (Dll.length t);
  Alcotest.(check bool) "no first" true (Dll.first t = None);
  Alcotest.(check bool) "no last" true (Dll.last t = None);
  check_list "contents" [] t

let test_append_order () =
  let t = Dll.create () in
  let (_ : int Dll.node) = Dll.append t 1 in
  let (_ : int Dll.node) = Dll.append t 2 in
  let (_ : int Dll.node) = Dll.append t 3 in
  check_list "append keeps order" [ 1; 2; 3 ] t;
  Alcotest.(check int) "length" 3 (Dll.length t)

let test_prepend () =
  let t = Dll.create () in
  let (_ : int Dll.node) = Dll.prepend t 1 in
  let (_ : int Dll.node) = Dll.prepend t 2 in
  check_list "prepend reverses" [ 2; 1 ] t

let test_remove_middle () =
  let t = Dll.create () in
  let (_ : int Dll.node) = Dll.append t 1 in
  let middle = Dll.append t 2 in
  let (_ : int Dll.node) = Dll.append t 3 in
  Dll.remove t middle;
  check_list "middle removed" [ 1; 3 ] t;
  Alcotest.(check bool) "detached" false (Dll.attached middle)

let test_remove_ends () =
  let t = Dll.create () in
  let a = Dll.append t 1 in
  let (_ : int Dll.node) = Dll.append t 2 in
  let c = Dll.append t 3 in
  Dll.remove t a;
  Dll.remove t c;
  check_list "ends removed" [ 2 ] t;
  (match Dll.first t with
  | Some node -> Alcotest.(check int) "new head" 2 (Dll.value node)
  | None -> Alcotest.fail "expected a head");
  match Dll.last t with
  | Some node -> Alcotest.(check int) "new tail" 2 (Dll.value node)
  | None -> Alcotest.fail "expected a tail"

let test_remove_only_element () =
  let t = Dll.create () in
  let a = Dll.append t 7 in
  Dll.remove t a;
  Alcotest.(check bool) "empty again" true (Dll.is_empty t);
  check_list "contents" [] t

let test_double_remove_is_noop () =
  let t = Dll.create () in
  let a = Dll.append t 1 in
  let (_ : int Dll.node) = Dll.append t 2 in
  Dll.remove t a;
  Dll.remove t a;
  check_list "single removal effect" [ 2 ] t;
  Alcotest.(check int) "length" 1 (Dll.length t)

let test_reuse_after_clear () =
  let t = Dll.create () in
  let (_ : int Dll.node) = Dll.append t 1 in
  let (_ : int Dll.node) = Dll.append t 2 in
  Dll.clear t;
  Alcotest.(check bool) "cleared" true (Dll.is_empty t);
  let (_ : int Dll.node) = Dll.append t 9 in
  check_list "usable after clear" [ 9 ] t

let test_iter_allows_removal () =
  let t = Dll.create () in
  let (_ : int Dll.node) = Dll.append t 1 in
  let (_ : int Dll.node) = Dll.append t 2 in
  let (_ : int Dll.node) = Dll.append t 3 in
  (* Remove even values during traversal. *)
  Dll.iter_nodes (fun node -> if Dll.value node mod 2 = 0 then Dll.remove t node) t;
  check_list "evens removed in-flight" [ 1; 3 ] t

let test_rev_iter () =
  let t = Dll.create () in
  List.iter (fun v -> ignore (Dll.append t v)) [ 1; 2; 3 ];
  let seen = ref [] in
  Dll.rev_iter (fun v -> seen := v :: !seen) t;
  Alcotest.(check (list int)) "reverse order" [ 1; 2; 3 ] !seen

let test_take_while_rev () =
  let t = Dll.create () in
  List.iter (fun v -> ignore (Dll.append t v)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "suffix above 2" [ 3; 4; 5 ]
    (Dll.take_while_rev (fun v -> v > 2) t);
  Alcotest.(check (list int)) "empty suffix" [] (Dll.take_while_rev (fun v -> v > 9) t);
  Alcotest.(check (list int)) "whole list" [ 1; 2; 3; 4; 5 ]
    (Dll.take_while_rev (fun _ -> true) t)

let test_fold_and_set_value () =
  let t = Dll.create () in
  let node = Dll.append t 10 in
  let (_ : int Dll.node) = Dll.append t 20 in
  Dll.set_value node 11;
  Alcotest.(check int) "sum after set_value" 31 (Dll.fold_left ( + ) 0 t)

let test_next_prev_navigation () =
  let t = Dll.create () in
  let a = Dll.append t 1 in
  let b = Dll.append t 2 in
  (match Dll.next a with
  | Some node -> Alcotest.(check int) "next of head" 2 (Dll.value node)
  | None -> Alcotest.fail "expected next");
  match Dll.prev b with
  | Some node -> Alcotest.(check int) "prev of tail" 1 (Dll.value node)
  | None -> Alcotest.fail "expected prev"

(* Property: any interleaving of appends and removals matches a model
   implemented with plain lists. *)
let prop_matches_model =
  let gen = QCheck2.Gen.(list (pair bool small_nat)) in
  QCheck2.Test.make ~name:"dll matches list model" ~count:300 gen (fun script ->
      let t = Dll.create () in
      let nodes = ref [] in
      let model = ref [] in
      let counter = ref 0 in
      List.iter
        (fun (is_append, k) ->
          if is_append || !nodes = [] then begin
            incr counter;
            let v = !counter in
            nodes := !nodes @ [ Dll.append t v ];
            model := !model @ [ v ]
          end
          else begin
            let index = k mod List.length !nodes in
            let node = List.nth !nodes index in
            let v = Dll.value node in
            Dll.remove t node;
            nodes := List.filteri (fun i _ -> i <> index) !nodes;
            model := List.filter (fun x -> x <> v) !model
          end)
        script;
      Dll.to_list t = !model && Dll.length t = List.length !model)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "append order" `Quick test_append_order;
    Alcotest.test_case "prepend" `Quick test_prepend;
    Alcotest.test_case "remove middle" `Quick test_remove_middle;
    Alcotest.test_case "remove ends" `Quick test_remove_ends;
    Alcotest.test_case "remove only element" `Quick test_remove_only_element;
    Alcotest.test_case "double remove is no-op" `Quick test_double_remove_is_noop;
    Alcotest.test_case "reuse after clear" `Quick test_reuse_after_clear;
    Alcotest.test_case "iter allows removal" `Quick test_iter_allows_removal;
    Alcotest.test_case "rev_iter" `Quick test_rev_iter;
    Alcotest.test_case "take_while_rev" `Quick test_take_while_rev;
    Alcotest.test_case "fold and set_value" `Quick test_fold_and_set_value;
    Alcotest.test_case "next/prev navigation" `Quick test_next_prev_navigation;
    QCheck_alcotest.to_alcotest prop_matches_model;
  ]

(** Ficus-style replication (paper §8.3, reference [5]): single-shot
    update notification plus periodic per-item reconciliation.

    After a local update, the node notifies every peer once; notified
    peers pull the new copy from the updater. A peer that is down at
    notification time is never re-notified — "this notification is
    attempted only once, and no indirect copying ... occurs" — so a
    separate reconciliation pass periodically compares the version
    vectors of {e every} file pair, O(N) per session, to mop up.

    The paper's point stands reproduced: notification keeps most data
    fresh cheaply, but the safety net still costs O(N) per
    reconciliation, which the DBVV protocol avoids. *)

type t

val create : n:int -> universe:string list -> t

val update : t -> node:int -> item:string -> Edb_store.Operation.t -> unit

val notify : t -> origin:int -> unit
(** Send the pending update notifications of [origin] to every alive
    peer; each notified peer pulls the named items immediately. Pending
    notifications are cleared whether or not peers were reachable. *)

val reconcile : t -> src:int -> dst:int -> unit
(** One reconciliation session: compare every item's IVVs and pull
    newer copies from [src] into [dst]. *)

val crash : t -> node:int -> unit

val recover : t -> node:int -> unit

val read : t -> node:int -> item:string -> string option

val conflicts_detected : t -> int

val converged : t -> bool

val driver : t -> Driver.t
(** Driver whose [session] is {!reconcile}; [update] performs the
    update {e and} its one-shot notification, as Ficus does. *)

(** The Lotus Notes replication protocol as described in the paper's
    §8.1.

    Every data item copy carries a {e sequence number} — the count of
    updates it has seen — and every server records, per peer, the time
    of the last update propagation to that peer. A session from [j] to
    [i]:

    + [j] checks whether anything changed since the last propagation to
      [i]. Only if {e nothing at all} changed is this O(1); otherwise
      [j] scans the modification time of {e every} item (O(N)) to build
      the list of items modified since then, and ships their
      (name, seqno) pairs.
    + [i] compares each listed seqno with its own copy's and pulls the
      items where [j]'s is greater.

    Two deficiencies the paper calls out, both reproduced here:

    - replicas that became identical {e indirectly} (through third
      nodes) still pay the O(N) scan and exchange a useless list;
    - concurrent updates are not detected: the copy with the higher
      sequence number silently wins, violating correctness criterion 2
      (an update can be lost, §8.1 last paragraph). *)

type t

val create : n:int -> universe:string list -> t

val update : t -> node:int -> item:string -> Edb_store.Operation.t -> unit

val session : t -> src:int -> dst:int -> unit
(** Propagate from [src] to [dst] (the direction Lotus calls "i invokes
    anti-entropy to catch up from j"). *)

val read : t -> node:int -> item:string -> string option

val sequence_number : t -> node:int -> item:string -> int

val driver : t -> Driver.t

val converged : t -> bool

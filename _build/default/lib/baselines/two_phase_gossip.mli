(** Two-phase gossip (Heddaya, Hsu & Weihl 1989 — paper §8.3).

    An improvement over Wuu–Bernstein's protocol [15] along two axes the
    paper names: "sending fewer version vectors in a gossip message"
    and "a more general method for garbage-collecting log records".

    Modelled here as a log-gossip protocol whose messages carry only
    two vectors — the sender's own version vector and the sender's
    belief about the receiver's — instead of the full [n × n]
    knowledge matrix. Garbage collection runs in a second phase: an
    acknowledgement vector is piggybacked on the reverse gossip, and a
    record is discarded once every node has acknowledged it, which the
    sender tracks with one per-peer acknowledged-vector (still cheaper
    than the full matrix on the wire).

    The overhead property the paper cares about is unchanged from [15]:
    building a message examines every retained log record, so the cost
    grows with the number of updates exchanged — only the {e vector}
    overhead shrinks from [n²] to [2n] per message (visible in
    experiment E10's byte columns). *)

type t

val create : n:int -> t

val update : t -> node:int -> item:string -> Edb_store.Operation.t -> unit

val session : t -> src:int -> dst:int -> unit
(** One gossip message from [src] to [dst], carrying [src]'s version
    vector, its belief about [dst]'s, and the events [dst] may miss;
    [dst] replies (conceptually) with its acknowledgement vector, which
    we deliver immediately since sessions are synchronous here. *)

val read : t -> node:int -> item:string -> string option

val log_length : t -> node:int -> int

val driver : t -> Driver.t

val converged : t -> bool

(** Oracle 7 Symmetric Replication as described in the paper's §8.2.

    "Every server keeps track of the updates it performs and
    periodically ships them to all other servers. No forwarding of
    updates is performed." Efficient in the failure-free case — only
    the data that changed travels — but a crash of the originating
    server mid-propagation strands the nodes it had not reached yet:
    they stay obsolete until the originator recovers, because nobody
    else forwards on its behalf (reproduced by experiment E6).

    The push cursor is explicit so the failure experiment can crash the
    originator after reaching an arbitrary subset of peers. *)

type t

val create : n:int -> t

val update : t -> node:int -> item:string -> Edb_store.Operation.t -> unit
(** Apply locally and enqueue the update record for shipping. *)

val push_to : t -> origin:int -> dst:int -> unit
(** Ship to [dst] every update record of [origin] that [dst] has not
    received yet. No-op when either node is crashed. *)

val push_all : t -> origin:int -> unit
(** {!push_to} every other (alive) node — one periodic shipping round. *)

val crash : t -> node:int -> unit

val recover : t -> node:int -> unit

val is_stale : t -> node:int -> bool
(** Whether some other node holds update records [node] has not
    received — i.e. [node] observably lags. *)

val read : t -> node:int -> item:string -> string option

val driver : t -> Driver.t
(** Driver whose [session ~src ~dst] is [push_to ~origin:src ~dst]. *)

val converged : t -> bool

lib/baselines/two_phase_gossip.mli: Driver Edb_store

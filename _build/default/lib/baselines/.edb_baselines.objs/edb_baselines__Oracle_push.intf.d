lib/baselines/oracle_push.mli: Driver Edb_store

lib/baselines/epidemic_driver.ml: Driver Edb_core

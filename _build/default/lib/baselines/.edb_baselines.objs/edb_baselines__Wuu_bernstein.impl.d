lib/baselines/wuu_bernstein.ml: Array Driver Edb_metrics Edb_store Hashtbl List Option

lib/baselines/demers.ml: Array Driver Edb_metrics Edb_store Edb_vv List Option String

lib/baselines/oracle_push.ml: Array Driver Edb_metrics Edb_store Hashtbl List Option

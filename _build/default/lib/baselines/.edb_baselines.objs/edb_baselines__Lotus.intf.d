lib/baselines/lotus.mli: Driver Edb_store

lib/baselines/ficus.mli: Driver Edb_store

lib/baselines/driver.mli: Edb_metrics Edb_store

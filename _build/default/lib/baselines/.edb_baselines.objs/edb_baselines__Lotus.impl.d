lib/baselines/lotus.ml: Array Driver Edb_metrics Edb_store Hashtbl List Option String

lib/baselines/demers.mli: Driver Edb_store

lib/baselines/epidemic_driver.mli: Driver Edb_core

lib/baselines/driver.ml: Array Edb_metrics Edb_store

lib/baselines/wuu_bernstein.mli: Driver Edb_store

lib/baselines/two_phase_gossip.ml: Array Driver Edb_metrics Edb_store Hashtbl List Option

(** Demers-style per-item anti-entropy (the "existing epidemic
    protocols" of the paper's §1 and §8.3).

    Each replica keeps an IVV per data item; an anti-entropy session
    performs a "periodic pair-wise comparison of version information of
    data item copies" — one comparison {e per item in the database} —
    and copies the items whose source copy dominates. Correct and
    convergent, but every session costs O(N) in the total number of
    items, which is exactly the scalability problem the paper attacks.

    The full item universe must be declared up front ([universe]) so
    that the session really examines every item, as the real protocol
    would, even those never updated. *)

type t

val create : n:int -> universe:string list -> t
(** [create ~n ~universe] is a cluster of [n] replicas over the given
    item universe. *)

val update : t -> node:int -> item:string -> Edb_store.Operation.t -> unit

val session : t -> src:int -> dst:int -> unit
(** Pull from [src] into [dst]: compare every item's IVVs, copy items
    where [src] strictly dominates, declare conflicts on concurrent
    pairs. *)

val read : t -> node:int -> item:string -> string option

val conflicts_detected : t -> int

val driver : t -> Driver.t

val converged : t -> bool

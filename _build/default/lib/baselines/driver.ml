module Counters = Edb_metrics.Counters

type t = {
  name : string;
  n : int;
  update : node:int -> item:string -> op:Edb_store.Operation.t -> unit;
  session : src:int -> dst:int -> unit;
  read : node:int -> item:string -> string option;
  counters : node:int -> Counters.t;
  total_counters : unit -> Counters.t;
  reset_counters : unit -> unit;
  converged : unit -> bool;
}

let total_of_nodes counters =
  let acc = Counters.create () in
  Array.iter (fun c -> Counters.add_into acc c) counters;
  acc

let reset_nodes counters = Array.iter Counters.reset counters

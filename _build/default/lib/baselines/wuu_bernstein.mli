(** Wuu & Bernstein's replicated-log gossip protocol (paper §8.3,
    reference [15]).

    Each node keeps a {e full log} of update events and an [n × n]
    knowledge matrix [T]: row [i] is the node's own version vector, row
    [k] its belief about node [k]'s version vector. A gossip message
    from [src] to [dst] carries the events [src] cannot prove [dst]
    already has, plus the matrix; events known by everybody are
    garbage-collected.

    The overhead property the paper contrasts against (§8.3 footnote 4):
    building a gossip message examines {e every retained log record},
    so the cost grows with the number of updates exchanged, not just
    with the number of distinct items — unlike the paper's log vector,
    which keeps one record per (origin, item). Experiment E10 measures
    exactly this difference.

    Values converge by last-writer-wins over the total order
    [(seq, origin)], which keeps replicas comparable without modelling
    the original paper's dictionary semantics. *)

type t

val create : n:int -> t

val update : t -> node:int -> item:string -> Edb_store.Operation.t -> unit

val session : t -> src:int -> dst:int -> unit
(** One gossip message from [src] to [dst]. *)

val read : t -> node:int -> item:string -> string option

val log_length : t -> node:int -> int
(** Retained (not yet garbage-collected) event count at a node. *)

val driver : t -> Driver.t

val converged : t -> bool

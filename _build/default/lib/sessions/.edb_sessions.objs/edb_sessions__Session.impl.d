lib/sessions/session.ml: Edb_core Edb_vv Format List

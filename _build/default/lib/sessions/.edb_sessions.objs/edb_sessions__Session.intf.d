lib/sessions/session.mli: Edb_core Edb_store Edb_vv Format

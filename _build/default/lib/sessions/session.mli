(** Session guarantees for weakly consistent reads and writes.

    Implements the four guarantees of Terry et al., "Session Guarantees
    for Weakly Consistent Replicated Data" (PDIS 1994) — reference [14]
    of the paper, discussed in §8.3 — on top of the epidemic cluster.
    A session belongs to one client that may contact a different server
    on every operation (the paper's motivating mobile/dial-up setting);
    the guarantees constrain which servers are {e sufficiently current}
    for the session, not how replicas converge.

    The database version vector is exactly the "session vector"
    structure [14] calls for: the session accumulates

    - a {e read vector} — the merge of the DBVVs of every server it has
      read from, and
    - a {e write vector} — covering every write the session has made;

    and a server [S] with DBVV [V_S] is acceptable for:

    - {b Read-your-writes}: reads require [V_S ≥ write_vector];
    - {b Monotonic reads}: reads require [V_S ≥ read_vector];
    - {b Writes-follow-reads}: writes require [V_S ≥ read_vector];
    - {b Monotonic writes}: writes require [V_S ≥ write_vector].

    Denied operations return the first violated guarantee; the caller
    retries at another server or after more anti-entropy, which is the
    protocol [14] prescribes.

    Limitation (documented): session writes go to {e regular} copies
    only. If the chosen server holds an auxiliary (out-of-bound) copy
    of the item, the write is refused with [`Aux_pending] — deferred
    auxiliary updates are invisible to DBVV ordering until intra-node
    propagation replays them, so no vector-based guarantee could be
    given. *)

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Writes_follow_reads
  | Monotonic_writes

type denial =
  [ `Violates of guarantee  (** The server is not current enough. *)
  | `Aux_pending of string
    (** The server holds an auxiliary copy of this item (writes only). *)
  ]

type t

val create : ?guarantees:guarantee list -> Edb_core.Cluster.t -> t
(** [create cluster] opens a session enforcing all four guarantees;
    pass [~guarantees] to enforce a subset (possibly none). *)

val guarantees : t -> guarantee list

val read : t -> node:int -> item:string -> (string option, denial) result
(** [read t ~node ~item] reads the item's regular copy at that server
    if the session's guarantees admit it, folding the server's DBVV
    into the session's read vector on success. *)

val write :
  t -> node:int -> item:string -> Edb_store.Operation.t -> (unit, denial) result
(** [write t ~node ~item op] performs the update at that server if
    admitted, extending the session's write vector on success. *)

val read_vector : t -> Edb_vv.Version_vector.t
(** A snapshot of the session's accumulated read vector. *)

val write_vector : t -> Edb_vv.Version_vector.t
(** A snapshot of the session's accumulated write vector. *)

val pp_guarantee : Format.formatter -> guarantee -> unit

module Cluster = Edb_core.Cluster
module Node = Edb_core.Node
module Vv = Edb_vv.Version_vector

type guarantee =
  | Read_your_writes
  | Monotonic_reads
  | Writes_follow_reads
  | Monotonic_writes

type denial = [ `Violates of guarantee | `Aux_pending of string ]

type t = {
  cluster : Cluster.t;
  guarantees : guarantee list;
  read_vector : Vv.t;
  write_vector : Vv.t;
}

let all_guarantees =
  [ Read_your_writes; Monotonic_reads; Writes_follow_reads; Monotonic_writes ]

let create ?(guarantees = all_guarantees) cluster =
  let n = Cluster.n cluster in
  { cluster; guarantees; read_vector = Vv.create ~n; write_vector = Vv.create ~n }

let guarantees t = t.guarantees

let enforced t g = List.mem g t.guarantees

(* [server_vv ≥ required]? *)
let current_enough ~server_vv ~required = Vv.dominates_or_equal server_vv required

let first_violation t ~server_vv ~for_op =
  let candidates =
    match for_op with
    | `Read ->
      [ (Read_your_writes, t.write_vector); (Monotonic_reads, t.read_vector) ]
    | `Write ->
      [ (Writes_follow_reads, t.read_vector); (Monotonic_writes, t.write_vector) ]
  in
  List.find_map
    (fun (g, required) ->
      if enforced t g && not (current_enough ~server_vv ~required) then Some g
      else None)
    candidates

let read t ~node ~item =
  let server = Cluster.node t.cluster node in
  let server_vv = Node.dbvv server in
  match first_violation t ~server_vv ~for_op:`Read with
  | Some g -> Error (`Violates g)
  | None ->
    (* The session has now observed everything this server reflects. *)
    Vv.merge_into t.read_vector ~from:server_vv;
    Ok (Node.read_regular server item)

let write t ~node ~item op =
  let server = Cluster.node t.cluster node in
  if Node.has_aux server item then Error (`Aux_pending item)
  else
    let server_vv = Node.dbvv server in
    match first_violation t ~server_vv ~for_op:`Write with
    | Some g -> Error (`Violates g)
    | None ->
      Cluster.update t.cluster ~node ~item op;
      (* The write is the server's latest own update; covering the
         server's whole post-write DBVV keeps the vector sound (any
         server dominating it has certainly seen this write). *)
      Vv.merge_into t.write_vector ~from:(Node.dbvv server);
      Ok ()

let read_vector t = Vv.copy t.read_vector

let write_vector t = Vv.copy t.write_vector

let pp_guarantee fmt g =
  Format.pp_print_string fmt
    (match g with
    | Read_your_writes -> "read-your-writes"
    | Monotonic_reads -> "monotonic-reads"
    | Writes_follow_reads -> "writes-follow-reads"
    | Monotonic_writes -> "monotonic-writes")

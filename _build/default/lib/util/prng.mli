(** Deterministic pseudo-random numbers (splitmix64).

    Every source of randomness in the reproduction — workload generators,
    peer selection, network latency jitter, failure injection — draws from
    an explicit [Prng.t] so that simulations and property tests are exactly
    reproducible from a seed. The OCaml stdlib [Random] module is never
    used in library code. *)

type t
(** A mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] is a generator determined entirely by [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Derived
    generators produce streams independent of the parent's subsequent
    output; use one per simulated component. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] samples an exponential distribution; used for
    network latency jitter. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element of [a]. [a] must be
    non-empty. *)

type 'a node = {
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable attached : bool;
}

type 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable length : int;
}

let create () = { head = None; tail = None; length = 0 }

let length t = t.length

let is_empty t = t.length = 0

let append t v =
  let n = { value = v; prev = t.tail; next = None; attached = true } in
  (match t.tail with
  | None -> t.head <- Some n
  | Some old_tail -> old_tail.next <- Some n);
  t.tail <- Some n;
  t.length <- t.length + 1;
  n

let prepend t v =
  let n = { value = v; prev = None; next = t.head; attached = true } in
  (match t.head with
  | None -> t.tail <- Some n
  | Some old_head -> old_head.prev <- Some n);
  t.head <- Some n;
  t.length <- t.length + 1;
  n

let remove t n =
  if n.attached then begin
    (match n.prev with
    | None -> t.head <- n.next
    | Some p -> p.next <- n.next);
    (match n.next with
    | None -> t.tail <- n.prev
    | Some s -> s.prev <- n.prev);
    n.prev <- None;
    n.next <- None;
    n.attached <- false;
    t.length <- t.length - 1
  end

let value n = n.value

let set_value n v = n.value <- v

let attached n = n.attached

let first t = t.head

let last t = t.tail

let next n = n.next

let prev n = n.prev

let iter_nodes f t =
  let rec loop = function
    | None -> ()
    | Some n ->
      (* Capture the successor first so [f] may remove [n]. *)
      let succ = n.next in
      f n;
      loop succ
  in
  loop t.head

let iter f t = iter_nodes (fun n -> f n.value) t

let rev_iter f t =
  let rec loop = function
    | None -> ()
    | Some n ->
      let pred = n.prev in
      f n.value;
      loop pred
  in
  loop t.tail

let fold_left f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold_left (fun acc v -> v :: acc) [] t)

let take_while_rev p t =
  let rec loop acc = function
    | None -> acc
    | Some n -> if p n.value then loop (n.value :: acc) n.prev else acc
  in
  loop [] t.tail

let clear t =
  iter_nodes (fun n -> remove t n) t

(** Intrusive doubly-linked lists with O(1) append and O(1) unlink.

    This is the substrate for the paper's Figure 1: log components keep
    their records in a doubly-linked list so that, when a fresher record
    for the same data item arrives, the stale record can be unlinked in
    constant time through the per-item pointer array [P(x)].

    Nodes are first-class: callers keep the ['a node] returned by
    {!append} and may later {!remove} it directly, without any search.
    A node knows whether it is still attached, so removing twice is
    harmless and [O(1)]. *)

type 'a node
(** A cell of a list, carrying one value. *)

type 'a t
(** A mutable doubly-linked list. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty list. *)

val length : 'a t -> int
(** [length t] is the number of attached nodes, maintained in O(1). *)

val is_empty : 'a t -> bool
(** [is_empty t] is [length t = 0]. *)

val append : 'a t -> 'a -> 'a node
(** [append t v] links a new node carrying [v] at the tail of [t] and
    returns it. O(1). *)

val prepend : 'a t -> 'a -> 'a node
(** [prepend t v] links a new node carrying [v] at the head of [t] and
    returns it. O(1). *)

val remove : 'a t -> 'a node -> unit
(** [remove t n] unlinks [n] from [t] in O(1). Removing a node that is
    no longer attached is a no-op. It is a programming error to remove
    a node from a list it never belonged to. *)

val value : 'a node -> 'a
(** [value n] is the payload of [n]. *)

val set_value : 'a node -> 'a -> unit
(** [set_value n v] replaces the payload of [n]. *)

val attached : 'a node -> bool
(** [attached n] is [true] while [n] is linked into its list. *)

val first : 'a t -> 'a node option
(** [first t] is the head node, if any. *)

val last : 'a t -> 'a node option
(** [last t] is the tail node, if any. *)

val next : 'a node -> 'a node option
(** [next n] is the successor of [n] in list order, if attached. *)

val prev : 'a node -> 'a node option
(** [prev n] is the predecessor of [n] in list order, if attached. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] to every value, head to tail. *)

val iter_nodes : ('a node -> unit) -> 'a t -> unit
(** [iter_nodes f t] applies [f] to every node, head to tail. [f] may
    remove the node it is given. *)

val rev_iter : ('a -> unit) -> 'a t -> unit
(** [rev_iter f t] applies [f] to every value, tail to head. *)

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** [fold_left f init t] folds over values head to tail. *)

val to_list : 'a t -> 'a list
(** [to_list t] is the values of [t], head to tail. *)

val take_while_rev : ('a -> bool) -> 'a t -> 'a list
(** [take_while_rev p t] walks from the tail towards the head while [p]
    holds and returns the matching suffix of [t] {e in list order}
    (head-of-suffix first). Runs in time linear in the suffix length:
    this is how log tails are extracted in time proportional to the
    number of records selected, not the log size. *)

val clear : 'a t -> unit
(** [clear t] detaches every node. O(length). *)

(* Splitmix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
   quality for simulation purposes, and trivially seedable. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take the top bits (better distributed) modulo the bound. The modulo
     bias is negligible for simulation bounds (far below 2^62). *)
  let v = Int64.shift_right_logical (bits64 t) 2 in
  Int64.to_int (Int64.rem v (Int64.of_int bound))

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits mapped to [0, 1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

lib/util/prng.mli:

lib/util/dll.mli:

lib/util/dll.ml: List

(** Zipfian item selection.

    The paper's target workloads are skewed: "the number of data items
    that are frequently updated ... is much less than the total number of
    data items" (§1). Benches model this with a Zipf distribution over
    item ranks; the sampler precomputes the CDF once and samples by
    binary search. *)

type t

val create : n:int -> exponent:float -> t
(** [create ~n ~exponent] prepares a sampler over ranks [0 .. n-1] with
    probability proportional to [1 / (rank+1)^exponent]. [exponent = 0.]
    degenerates to the uniform distribution. [n] must be positive. *)

val sample : t -> Prng.t -> int
(** [sample t prng] draws a rank in [\[0, n)]. O(log n). *)

val n : t -> int
(** [n t] is the size of the sampled universe. *)

val probability : t -> int -> float
(** [probability t rank] is the probability mass of [rank]. *)

type t = { cdf : float array; n : int }

let create ~n ~exponent =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. ((float_of_int (i + 1)) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  (* Defend against accumulated floating error at the top end. *)
  cdf.(n - 1) <- 1.0;
  { cdf; n }

let n t = t.n

let probability t rank =
  if rank < 0 || rank >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if rank = 0 then t.cdf.(0) else t.cdf.(rank) -. t.cdf.(rank - 1)

let sample t prng =
  let u = Prng.float prng 1.0 in
  (* Smallest index whose cdf value exceeds u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1)

(** A write-ahead (redo) log of opaque records.

    Framing per record: 8-byte length, payload, 4-byte Adler-32 of the
    payload. {!replay} applies complete, checksummed records in order
    and stops at the first damaged frame — which, after a crash, is the
    torn tail of the last write; everything before it is recovered.
    The number of records recovered and whether a torn tail was
    discarded are both reported, so callers can log the data-loss
    window.

    {!Durable_node} journals protocol mutations here between
    checkpoints; on recovery the snapshot is loaded and the journal
    re-executed, reconstructing the exact pre-crash state (including
    sequence numbers other replicas may already have observed —
    re-assigning those to different updates would corrupt the
    epidemic, which is why recovery must replay rather than restart). *)

type writer

val open_writer : path:string -> writer
(** [open_writer ~path] opens (creating if needed) the log for
    appending. *)

val append : writer -> string -> unit
(** [append w record] frames, writes and flushes one record. *)

val close_writer : writer -> unit

type replay_result = {
  records : int;  (** Complete records applied. *)
  torn_tail : bool;  (** Whether a damaged final frame was discarded. *)
}

val replay : path:string -> f:(string -> unit) -> (replay_result, string) result
(** [replay ~path ~f] applies [f] to every intact record in order. A
    missing file is an empty log ([Ok {records = 0; _}]). *)

val reset : path:string -> unit
(** [reset ~path] truncates the log to empty (after a checkpoint). *)

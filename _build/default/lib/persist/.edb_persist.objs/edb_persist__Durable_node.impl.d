lib/persist/durable_node.ml: Codec Edb_core Filename Printf Snapshot Sys Wal Wire

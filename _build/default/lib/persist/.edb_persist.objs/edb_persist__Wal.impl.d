lib/persist/wal.ml: Bytes Char Int32 Int64 String Sys

lib/persist/wal.mli:

lib/persist/snapshot.ml: Codec Edb_core Printexc Printf String Sys Wire

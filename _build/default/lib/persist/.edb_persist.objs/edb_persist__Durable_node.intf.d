lib/persist/durable_node.mli: Edb_core Edb_store Wal

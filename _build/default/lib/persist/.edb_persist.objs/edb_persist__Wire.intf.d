lib/persist/wire.mli: Codec Edb_core Edb_log Edb_store Edb_vv

lib/persist/snapshot.mli: Edb_core

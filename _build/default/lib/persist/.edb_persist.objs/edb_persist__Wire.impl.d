lib/persist/wire.ml: Codec Edb_core Edb_log Edb_store Edb_vv Printf

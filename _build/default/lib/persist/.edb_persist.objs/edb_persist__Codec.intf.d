lib/persist/codec.mli:

(** Durable node checkpoints.

    Serializes a protocol node's entire durable state — items and IVVs,
    DBVV, log vector, auxiliary copies and auxiliary log — to a single
    checksummed binary blob, and restores it. Restoring yields a node
    whose behaviour is indistinguishable from the original: a crashed
    server that recovers from its last checkpoint simply looks, to the
    epidemic, like a server that has been disconnected since then, and
    ordinary anti-entropy brings it back up to date (this is exactly
    the failure model the paper's §8.2 relies on).

    Writes are atomic: the snapshot is written to a temporary file in
    the same directory and renamed over the target, so a crash during
    checkpointing never destroys the previous checkpoint. *)

val encode : Edb_core.Node.t -> string
(** [encode node] is the binary snapshot blob. *)

val decode :
  ?policy:Edb_core.Node.resolution_policy ->
  ?conflict_handler:(Edb_core.Conflict.t -> unit) ->
  ?mode:Edb_core.Node.propagation_mode ->
  string ->
  (Edb_core.Node.t, string) result
(** [decode blob] reconstructs the node, or explains why the blob is
    unusable (checksum mismatch, truncation, version skew, structural
    inconsistency). *)

val save : Edb_core.Node.t -> path:string -> unit
(** [save node ~path] writes {!encode}'s output atomically. *)

val load :
  ?policy:Edb_core.Node.resolution_policy ->
  ?conflict_handler:(Edb_core.Conflict.t -> unit) ->
  ?mode:Edb_core.Node.propagation_mode ->
  path:string ->
  unit ->
  (Edb_core.Node.t, string) result
(** [load ~path ()] reads and {!decode}s a snapshot file. *)

lib/core/cluster.ml: Array Edb_metrics Edb_store Edb_util Edb_vv Hashtbl List Node Printf String

lib/core/conflict.ml: Edb_vv Format

lib/core/cluster.mli: Edb_metrics Edb_store Node

lib/core/message.ml: Array Edb_log Edb_store Edb_vv List String

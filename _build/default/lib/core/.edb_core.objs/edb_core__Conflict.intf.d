lib/core/conflict.mli: Edb_vv Format

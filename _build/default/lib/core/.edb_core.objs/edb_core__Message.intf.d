lib/core/message.mli: Edb_log Edb_store Edb_vv

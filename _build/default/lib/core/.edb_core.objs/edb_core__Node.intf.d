lib/core/node.mli: Conflict Edb_log Edb_metrics Edb_store Edb_vv Message

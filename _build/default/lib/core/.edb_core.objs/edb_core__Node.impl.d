lib/core/node.ml: Array Conflict Edb_log Edb_metrics Edb_store Edb_vv Hashtbl List Logs Message Option Printf

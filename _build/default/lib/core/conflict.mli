(** Inconsistency reports.

    The paper's correctness criterion 1 (§2.1) requires inconsistent
    replicas to be {e detected}; resolution is application-specific and
    out of scope ("alerts the system administrator", §5.1). A conflict
    report captures where the inconsistency was observed and, when the
    version vectors pinpoint them, which two sites performed the
    conflicting updates (§5.1 footnote 3). *)

type origin =
  | Propagation of { source : int }
      (** Detected by [AcceptPropagation] comparing a shipped item
          against the local regular copy. *)
  | Out_of_bound of { source : int }
      (** Detected when an out-of-bound reply conflicts with the local
          (auxiliary or regular) copy. *)
  | Intra_node
      (** Detected by [IntraNodePropagation]: the regular copy's IVV
          conflicts with the IVV stored in the earliest auxiliary log
          record. *)

type t = {
  item : string;
  node : int;  (** The node that detected the inconsistency. *)
  local_vv : Edb_vv.Version_vector.t;
  remote_vv : Edb_vv.Version_vector.t;
  origin : origin;
  culprits : (int * int) option;
      (** [(k, l)] such that sites [k] and [l] hold inconsistent
          replicas, when derivable from the conflicting components. *)
}

val make :
  item:string ->
  node:int ->
  local_vv:Edb_vv.Version_vector.t ->
  remote_vv:Edb_vv.Version_vector.t ->
  origin:origin ->
  t
(** [make] copies both vectors and computes {!field-culprits}. *)

val pp : Format.formatter -> t -> unit

module Vv = Edb_vv.Version_vector

type origin =
  | Propagation of { source : int }
  | Out_of_bound of { source : int }
  | Intra_node

type t = {
  item : string;
  node : int;
  local_vv : Vv.t;
  remote_vv : Vv.t;
  origin : origin;
  culprits : (int * int) option;
}

let make ~item ~node ~local_vv ~remote_vv ~origin =
  {
    item;
    node;
    local_vv = Vv.copy local_vv;
    remote_vv = Vv.copy remote_vv;
    origin;
    culprits = Vv.conflicting_components local_vv remote_vv;
  }

let pp_origin fmt = function
  | Propagation { source } -> Format.fprintf fmt "propagation from node %d" source
  | Out_of_bound { source } -> Format.fprintf fmt "out-of-bound copy from node %d" source
  | Intra_node -> Format.pp_print_string fmt "intra-node propagation"

let pp fmt t =
  Format.fprintf fmt "conflict on %S at node %d (%a): local %a vs remote %a" t.item
    t.node pp_origin t.origin Vv.pp t.local_vv Vv.pp t.remote_vv;
  match t.culprits with
  | Some (k, l) -> Format.fprintf fmt " [sites %d and %d hold inconsistent replicas]" k l
  | None -> ()

module Prng = Edb_util.Prng
module Zipf = Edb_util.Zipf
module Operation = Edb_store.Operation

module Selector = struct
  type kind =
    | Uniform
    | Zipfian of Zipf.t
    | Hot_cold of { hot : int; hot_fraction : float }
    | First_n of { subset : int }

  type t = { n : int; kind : kind }

  let check_n n = if n <= 0 then invalid_arg "Selector: universe must be non-empty"

  let uniform ~n =
    check_n n;
    { n; kind = Uniform }

  let zipfian ~n ~exponent =
    check_n n;
    { n; kind = Zipfian (Zipf.create ~n ~exponent) }

  let hot_cold ~n ~hot ~hot_fraction =
    check_n n;
    if hot <= 0 || hot > n then invalid_arg "Selector.hot_cold: hot out of range";
    { n; kind = Hot_cold { hot; hot_fraction } }

  let first_n ~n ~subset =
    check_n n;
    if subset <= 0 || subset > n then invalid_arg "Selector.first_n: subset out of range";
    { n; kind = First_n { subset } }

  let pick t prng =
    match t.kind with
    | Uniform -> Prng.int prng t.n
    | Zipfian z -> Zipf.sample z prng
    | Hot_cold { hot; hot_fraction } ->
      if Prng.chance prng hot_fraction || hot = t.n then Prng.int prng hot
      else hot + Prng.int prng (t.n - hot)
    | First_n { subset } -> Prng.int prng subset

  let universe_size t = t.n
end

let item_name rank = Printf.sprintf "item-%06d" rank

let universe n = List.init n item_name

let payload ~item ~seq ~size =
  let stamp = Printf.sprintf "%s#%d:" item seq in
  let stamp_len = String.length stamp in
  if stamp_len >= size then String.sub stamp 0 size
  else stamp ^ String.make (size - stamp_len) 'x'

type step = { node : int; item : string; op : Operation.t }

let update_stream ~seed ~selector ~nodes ~count ~value_size =
  if nodes <= 0 then invalid_arg "Workload.update_stream: nodes must be positive";
  let prng = Prng.create ~seed in
  List.init count (fun seq ->
      let node = Prng.int prng nodes in
      let item = item_name (Selector.pick selector prng) in
      { node; item; op = Operation.Set (payload ~item ~seq ~size:value_size) })

let apply steps ~update =
  List.iter (fun { node; item; op } -> update ~node ~item ~op) steps

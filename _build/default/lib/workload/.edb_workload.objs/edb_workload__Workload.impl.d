lib/workload/workload.ml: Edb_store Edb_util List Printf String

lib/workload/workload.mli: Edb_store Edb_util

(** Workload generation for experiments and tests.

    The paper's target regime (§1–2): databases with many items of
    which few are updated between consecutive propagations, and few are
    copied out of bound. Selectors model that skew; update streams are
    deterministic given a seed so every experiment is reproducible. *)

module Selector : sig
  type t

  val uniform : n:int -> t
  (** Every item equally likely. *)

  val zipfian : n:int -> exponent:float -> t
  (** Zipf over item ranks — the frequently-updated "working set" is
      small. *)

  val hot_cold : n:int -> hot:int -> hot_fraction:float -> t
  (** With probability [hot_fraction], pick among the first [hot]
      items; otherwise among the rest. *)

  val first_n : n:int -> subset:int -> t
  (** Always pick uniformly among the first [subset] items — used when
      an experiment needs exactly [m] dirty items. *)

  val pick : t -> Edb_util.Prng.t -> int
  (** A rank in [\[0, n)]. *)

  val universe_size : t -> int
end

val item_name : int -> string
(** [item_name rank] is the canonical name of item [rank],
    zero-padded so lexicographic and numeric order agree. *)

val universe : int -> string list
(** [universe n] is [item_name 0 .. item_name (n-1)]. *)

val payload : item:string -> seq:int -> size:int -> string
(** [payload ~item ~seq ~size] is a deterministic value of exactly
    [size] bytes, distinct per [(item, seq)] — convergence checks can
    rely on exact equality. *)

type step = { node : int; item : string; op : Edb_store.Operation.t }

val update_stream :
  seed:int ->
  selector:Selector.t ->
  nodes:int ->
  count:int ->
  value_size:int ->
  step list
(** [update_stream] is a deterministic sequence of [count] user
    updates: each picks a uniformly random originating node and a
    selector-distributed item, with a [Set] of a fresh payload. *)

val apply :
  step list -> update:(node:int -> item:string -> op:Edb_store.Operation.t -> unit) -> unit
(** Feed a stream to any protocol's update entry point. *)

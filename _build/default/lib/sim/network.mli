(** The virtual network between replication nodes.

    Models the properties the paper's setting cares about: anti-entropy
    over slow or intermittent links ("during the next dial-up session",
    §1), lossy transport, and partitions. Sessions between partitioned
    or crashed endpoints simply do not happen — the epidemic process
    routes around them, which is exactly what experiment E6
    demonstrates. *)

type t

val create :
  ?base_latency:float ->
  ?jitter_mean:float ->
  ?loss_probability:float ->
  unit ->
  t
(** [create ()] is a reliable zero-jitter network with
    [base_latency = 1.0] time units. *)

val delay : t -> Edb_util.Prng.t -> float
(** [delay t prng] samples one session's network delay: base latency
    plus exponential jitter. *)

val lost : t -> Edb_util.Prng.t -> bool
(** [lost t prng] decides whether a session attempt is lost. *)

val partition : t -> int -> int -> unit
(** [partition t a b] blocks sessions between [a] and [b] (both
    directions). Idempotent. *)

val heal : t -> int -> int -> unit
(** [heal t a b] unblocks the pair. *)

val heal_all : t -> unit

val blocked : t -> int -> int -> bool

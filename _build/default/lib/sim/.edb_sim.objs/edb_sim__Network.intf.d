lib/sim/network.mli: Edb_util

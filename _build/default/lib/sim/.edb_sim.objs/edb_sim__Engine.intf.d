lib/sim/engine.mli: Edb_baselines Edb_store Network

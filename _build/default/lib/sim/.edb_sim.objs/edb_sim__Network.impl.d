lib/sim/network.ml: Edb_util Hashtbl

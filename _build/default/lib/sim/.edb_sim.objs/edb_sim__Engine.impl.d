lib/sim/engine.ml: Array Edb_baselines Edb_store Edb_util Event_queue Network

(** A priority queue of timestamped events (binary min-heap).

    Ties in time are broken by insertion order, so simulations are
    fully deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** [push t ~time e] schedules [e] at [time]. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** [pop t] removes and returns the earliest event. O(log n). *)

val peek_time : 'a t -> float option
(** [peek_time t] is the time of the earliest event without removing
    it. *)

val clear : 'a t -> unit

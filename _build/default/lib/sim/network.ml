module Prng = Edb_util.Prng

type t = {
  base_latency : float;
  jitter_mean : float;
  loss_probability : float;
  blocked_pairs : (int * int, unit) Hashtbl.t;
}

let create ?(base_latency = 1.0) ?(jitter_mean = 0.0) ?(loss_probability = 0.0) () =
  { base_latency; jitter_mean; loss_probability; blocked_pairs = Hashtbl.create 8 }

let delay t prng =
  if t.jitter_mean <= 0.0 then t.base_latency
  else t.base_latency +. Prng.exponential prng ~mean:t.jitter_mean

let lost t prng = Prng.chance prng t.loss_probability

let key a b = if a <= b then (a, b) else (b, a)

let partition t a b = Hashtbl.replace t.blocked_pairs (key a b) ()

let heal t a b = Hashtbl.remove t.blocked_pairs (key a b)

let heal_all t = Hashtbl.reset t.blocked_pairs

let blocked t a b = Hashtbl.mem t.blocked_pairs (key a b)

lib/experiments/experiments.ml: Edb_baselines Edb_core Edb_log Edb_metrics Edb_sim Edb_store Edb_tokens Edb_util Edb_workload Fun Hashtbl List Option Printf Scanf String

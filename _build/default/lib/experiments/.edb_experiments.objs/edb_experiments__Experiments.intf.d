lib/experiments/experiments.mli: Edb_metrics

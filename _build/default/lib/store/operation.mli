(** Update operations on data item values.

    The paper supports both whole-value replacement and byte-range
    updates ("the byte range of the update and the new value of data in
    the range", §4.4). Regular log records never carry operations — only
    [(item, seq)] — but auxiliary log records must store enough to
    {e re-do} the update during intra-node propagation, so operations
    are explicit, deterministic values. *)

type t =
  | Set of string  (** Replace the whole value. *)
  | Splice of { offset : int; data : string }
      (** Overwrite [data] at [offset], zero-padding any gap if the
          current value is shorter than [offset]. *)

val apply : string -> t -> string
(** [apply value op] is the value after [op]. Total and deterministic:
    replaying the same operations in the same order from the same state
    always yields the same value, which is what makes auxiliary-log
    replay sound. *)

val size_bytes : t -> int
(** [size_bytes op] is the payload size charged to the byte-cost model
    when an operation travels in a message or sits in the auxiliary
    log. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

lib/store/operation.mli: Format

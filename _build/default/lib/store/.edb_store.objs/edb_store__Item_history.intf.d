lib/store/item_history.mli: Operation

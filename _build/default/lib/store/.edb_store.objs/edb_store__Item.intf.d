lib/store/item.mli: Edb_vv Format Operation

lib/store/item.ml: Edb_vv Format Operation String

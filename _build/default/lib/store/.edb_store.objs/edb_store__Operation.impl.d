lib/store/operation.ml: Bytes Format String

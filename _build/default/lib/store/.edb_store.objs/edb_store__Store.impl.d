lib/store/store.ml: Hashtbl Item

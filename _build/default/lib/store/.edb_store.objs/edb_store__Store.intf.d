lib/store/store.mli: Item

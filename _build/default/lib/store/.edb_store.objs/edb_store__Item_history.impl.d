lib/store/item_history.ml: Array List Operation Queue

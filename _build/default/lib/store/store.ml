type t = { items : (string, Item.t) Hashtbl.t; n : int }

let create ~n =
  if n <= 0 then invalid_arg "Store.create: dimension must be positive";
  { items = Hashtbl.create 64; n }

let dimension t = t.n

let find_opt t name = Hashtbl.find_opt t.items name

let find_or_create t name =
  match Hashtbl.find_opt t.items name with
  | Some item -> item
  | None ->
    let item = Item.create ~name ~n:t.n in
    Hashtbl.add t.items name item;
    item

let mem t name = Hashtbl.mem t.items name

let size t = Hashtbl.length t.items

let iter f t = Hashtbl.iter (fun _ item -> f item) t.items

let fold f init t = Hashtbl.fold (fun _ item acc -> f acc item) t.items init

let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.items []

let total_value_bytes t = fold (fun acc item -> acc + Item.value_size item) 0 t

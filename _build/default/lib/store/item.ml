module Vv = Edb_vv.Version_vector

type t = {
  name : string;
  mutable value : string;
  mutable ivv : Vv.t;
  mutable is_selected : bool;
}

let create ~name ~n = { name; value = ""; ivv = Vv.create ~n; is_selected = false }

let apply item op = item.value <- Operation.apply item.value op

let value_size item = String.length item.value

let snapshot item = (item.value, Vv.copy item.ivv)

let pp fmt item =
  Format.fprintf fmt "%s=%S %a" item.name item.value Vv.pp item.ivv

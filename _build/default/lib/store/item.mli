(** A replica of one data item, with its item version vector.

    Carries the per-item control state the protocol needs: the IVV
    (paper §3) and the [IsSelected] flag used by [SendPropagation] to
    compute the set [S] of items to ship in O(m) (paper §6). *)

type t = {
  name : string;
  mutable value : string;
  mutable ivv : Edb_vv.Version_vector.t;
  mutable is_selected : bool;
      (** Scratch flag owned by [SendPropagation]; always [false]
          outside a propagation computation (§6). *)
}

val create : name:string -> n:int -> t
(** [create ~name ~n] is a fresh item with empty value and zero IVV of
    dimension [n]. *)

val apply : t -> Operation.t -> unit
(** [apply item op] updates the value only; version accounting is the
    caller's (the protocol's) responsibility. *)

val value_size : t -> int
(** [value_size item] is the byte size of the current value, charged by
    the cost model when the item is copied. *)

val snapshot : t -> string * Edb_vv.Version_vector.t
(** [snapshot item] is an immutable copy [(value, ivv)] — what travels
    in a propagation or out-of-bound message. *)

val pp : Format.formatter -> t -> unit

type entry = { origin : int; seq : int; op : Operation.t }

type t = { entries : entry Queue.t; depth : int }

let create ~depth =
  if depth < 1 then invalid_arg "Item_history.create: depth must be >= 1";
  { entries = Queue.create (); depth }

let depth t = t.depth

let push t e =
  Queue.add e t.entries;
  if Queue.length t.entries > t.depth then ignore (Queue.pop t.entries)

let clear t = Queue.clear t.entries

let length t = Queue.length t.entries

let entries t = List.of_seq (Queue.to_seq t.entries)

let oldest_seq_of_origin t ~origin =
  Queue.fold
    (fun acc e ->
      match acc with
      | Some _ -> acc
      | None -> if e.origin = origin then Some e.seq else None)
    None t.entries

let entries_after t ~threshold =
  Queue.fold
    (fun acc e -> if e.seq > threshold.(e.origin) then e :: acc else acc)
    [] t.entries
  |> List.rev

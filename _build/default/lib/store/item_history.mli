(** Bounded per-item update history, for op-log ("delta") propagation.

    The paper (§2) treats whole-item copying and update-record shipping
    as interchangeable transports for the same protocol. Delta shipping
    needs each replica to remember the recent operations applied to an
    item, tagged with their origin and the origin's global update
    sequence number (the same numbers the log vector uses), so a source
    can ship exactly the operations a recipient misses — and can {e
    prove} the shipped set complete, falling back to a whole copy when
    the history horizon has passed the recipient by.

    The history is a FIFO bounded at [depth] entries; pushing beyond
    the bound drops the oldest entry (advancing the horizon). *)

type entry = { origin : int; seq : int; op : Operation.t }
(** One applied update: originated at [origin] as its [seq]-th update
    (the origin's DBVV self-component at update time). *)

type t

val create : depth:int -> t
(** [create ~depth] is an empty history bounded at [depth] ≥ 1. *)

val depth : t -> int

val push : t -> entry -> unit
(** [push t e] appends [e], evicting the oldest entry if full. *)

val clear : t -> unit
(** Forget everything (used when a whole copy overwrites the value and
    the local history no longer describes it). *)

val length : t -> int

val entries : t -> entry list
(** Oldest first. *)

val oldest_seq_of_origin : t -> origin:int -> int option
(** [oldest_seq_of_origin t ~origin] is the sequence number of the
    oldest retained entry from [origin], if any. *)

val entries_after : t -> threshold:int array -> entry list
(** [entries_after t ~threshold] is the retained entries whose
    [seq > threshold.(origin)], in history (application) order — the
    operations a recipient with per-origin knowledge [threshold]
    misses. *)

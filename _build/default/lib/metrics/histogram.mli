(** Sample collection with percentile queries.

    Used for distributions the experiments report — update-propagation
    delay, session cost spread — where a mean alone hides the tail
    behaviour epidemic protocols are judged on. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** [mean t] is 0 for an empty histogram. *)

val min_value : t -> float

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], by nearest-rank on the
    sorted samples. Raises [Invalid_argument] on an empty histogram or
    out-of-range [p]. *)

val summary : t -> string
(** ["n=… mean=… p50=… p90=… max=…"] — or ["empty"]. *)

lib/metrics/table.mli:

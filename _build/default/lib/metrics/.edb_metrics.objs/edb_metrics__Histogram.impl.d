lib/metrics/histogram.ml: Array List Printf

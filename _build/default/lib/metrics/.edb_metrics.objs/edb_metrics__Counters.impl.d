lib/metrics/counters.ml: Format

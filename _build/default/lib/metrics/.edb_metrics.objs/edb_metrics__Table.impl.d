lib/metrics/table.ml: Buffer List String

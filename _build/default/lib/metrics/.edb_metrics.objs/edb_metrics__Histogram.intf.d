lib/metrics/histogram.mli:

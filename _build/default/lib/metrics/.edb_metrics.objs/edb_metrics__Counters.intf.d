lib/metrics/counters.mli: Format

type t = { mutable samples : float list; mutable sorted : float array option }

let create () = { samples = []; sorted = None }

let add t v =
  t.samples <- v :: t.samples;
  t.sorted <- None

let count t = List.length t.samples

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let mean t =
  match t.samples with
  | [] -> 0.0
  | samples ->
    List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples)

let min_value t =
  let a = sorted t in
  if Array.length a = 0 then invalid_arg "Histogram.min_value: empty" else a.(0)

let max_value t =
  let a = sorted t in
  if Array.length a = 0 then invalid_arg "Histogram.max_value: empty"
  else a.(Array.length a - 1)

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  let a = sorted t in
  let len = Array.length a in
  if len = 0 then invalid_arg "Histogram.percentile: empty";
  (* Nearest-rank. *)
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int len)) in
  a.(max 0 (min (len - 1) (rank - 1)))

let summary t =
  if count t = 0 then "empty"
  else
    Printf.sprintf "n=%d mean=%.1f p50=%.1f p90=%.1f max=%.1f" (count t) (mean t)
      (percentile t 50.0) (percentile t 90.0) (max_value t)

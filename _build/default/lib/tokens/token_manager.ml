module Cluster = Edb_core.Cluster
module Node = Edb_core.Node

type ownership = Held | Hint of int

type t = {
  cluster : Cluster.t;
  (* Per node: item -> ownership. Entries are lazy; an absent entry
     means the default (the home node holds, everyone else hints at the
     home). *)
  tables : (string, ownership) Hashtbl.t array;
  (* Every item that ever had an explicit entry, for invariant checks. *)
  known_items : (string, unit) Hashtbl.t;
  mutable transfers : int;
  mutable hops_followed : int;
}

type acquire_error = [ `Cycle of string ]

let create cluster =
  {
    cluster;
    tables = Array.init (Cluster.n cluster) (fun _ -> Hashtbl.create 16);
    known_items = Hashtbl.create 16;
    transfers = 0;
    hops_followed = 0;
  }

let home t item = Hashtbl.hash item mod Cluster.n t.cluster

let lookup t ~node ~item =
  match Hashtbl.find_opt t.tables.(node) item with
  | Some ownership -> ownership
  | None -> if node = home t item then Held else Hint (home t item)

let set t ~node ~item ownership =
  Hashtbl.replace t.known_items item ();
  Hashtbl.replace t.tables.(node) item ownership

let hint t ~node ~item =
  match lookup t ~node ~item with Held -> node | Hint believed -> believed

let holder t item =
  (* Follow the home node's own chain; the true holder is reachable
     from anywhere, the home included. *)
  let n = Cluster.n t.cluster in
  let rec follow node steps =
    if steps > n then
      invalid_arg "Token_manager.holder: hint cycle (broken invariant)"
    else
      match lookup t ~node ~item with
      | Held -> node
      | Hint next -> follow next (steps + 1)
  in
  follow (home t item) 0

let acquire t ~node ~item =
  match lookup t ~node ~item with
  | Held -> Ok 0
  | Hint first ->
    let n = Cluster.n t.cluster in
    let rec chase current visited hops =
      if hops > n then Error (`Cycle item)
      else
        match lookup t ~node:current ~item with
        | Held ->
          (* Transfer: the freshest copy of the item travels with the
             token as an out-of-bound copy, so the new holder updates
             the newest version (see .mli). *)
          let (_ : Node.oob_result) =
            Cluster.fetch_out_of_bound t.cluster ~recipient:node ~source:current item
          in
          set t ~node:current ~item (Hint node);
          set t ~node ~item Held;
          (* Path compression: everyone we asked now points straight at
             the new holder. *)
          List.iter (fun k -> if k <> node then set t ~node:k ~item (Hint node)) visited;
          t.transfers <- t.transfers + 1;
          t.hops_followed <- t.hops_followed + hops;
          Ok hops
        | Hint next -> chase next (current :: visited) (hops + 1)
    in
    chase first [] 1

let update t ~node ~item op =
  match acquire t ~node ~item with
  | Error _ as e -> e
  | Ok hops ->
    Cluster.update t.cluster ~node ~item op;
    Ok hops

let transfers t = t.transfers

let hops_followed t = t.hops_followed

let check_invariants t =
  let n = Cluster.n t.cluster in
  let check_item item acc =
    match acc with
    | Error _ -> acc
    | Ok () ->
      let holders = ref [] in
      for node = 0 to n - 1 do
        match lookup t ~node ~item with
        | Held -> holders := node :: !holders
        | Hint _ -> ()
      done;
      (match !holders with
      | [ _ ] ->
        (* Every chain must reach the holder within n hops. *)
        let rec reaches node steps =
          if steps > n then false
          else
            match lookup t ~node ~item with
            | Held -> true
            | Hint next -> reaches next (steps + 1)
        in
        let all_reach =
          List.for_all (fun node -> reaches node 0) (List.init n Fun.id)
        in
        if all_reach then Ok ()
        else Error (Printf.sprintf "item %S: a hint chain does not reach the holder" item)
      | [] -> Error (Printf.sprintf "item %S: no holder" item)
      | holders ->
        Error
          (Printf.sprintf "item %S: %d simultaneous holders" item (List.length holders)))
  in
  Hashtbl.fold (fun item () acc -> check_item item acc) t.known_items (Ok ())

(** Token-based pessimistic replica control (paper §2).

    The paper's system model allows strict consistency "by using tokens
    to prevent conflicting updates to multiple replicas: there is a
    unique token associated with every data item, and a replica is
    required to acquire a token before performing any updates." This
    module implements that regime on top of the epidemic cluster.

    Ownership is located through {e hint chains}: every node remembers
    who it believes holds an item's token (initially the item's
    deterministic {e home} node); a transfer leaves the previous holder
    hinting at the new one, and a successful acquisition
    path-compresses every hint followed. Chains therefore stay short
    under locality and are bounded by the node count in the worst
    case.

    Crucially, the token does not travel alone: a grant carries an
    {e out-of-bound copy} of the item (paper §5.2), so the new holder
    always updates the freshest version. This is what makes the token
    regime conflict-free end to end — each update extends the previous
    holder's history, giving a total order per item, while normal
    anti-entropy propagates the updates lazily in the background. *)

type t

type acquire_error =
  [ `Cycle of string  (** Hint chain failed to reach a holder — a bug. *) ]

val create : Edb_core.Cluster.t -> t
(** [create cluster] manages one token per item for the given cluster.
    Tokens start at each item's home node ([hash(item) mod n]). *)

val home : t -> string -> int
(** [home t item] is the item's home node. *)

val holder : t -> string -> int
(** [holder t item] is the node currently holding the token. *)

val hint : t -> node:int -> item:string -> int
(** [hint t ~node ~item] is who [node] currently believes holds the
    token ([node] itself if it is the holder). *)

val acquire : t -> node:int -> item:string -> (int, acquire_error) result
(** [acquire t ~node ~item] moves the token (and an out-of-bound copy
    of the item) to [node]; returns the number of hint hops followed
    (0 when [node] already held it). *)

val update :
  t -> node:int -> item:string -> Edb_store.Operation.t -> (int, acquire_error) result
(** [update t ~node ~item op] acquires the token, then performs the
    user update at [node]. Returns the acquisition hop count. Under
    this discipline no update ever conflicts. *)

val transfers : t -> int
(** Total token transfers performed. *)

val hops_followed : t -> int
(** Total hint hops followed across all acquisitions. *)

val check_invariants : t -> (unit, string) result
(** Exactly one holder per known item, and every hint chain reaches the
    holder within [n] hops. *)

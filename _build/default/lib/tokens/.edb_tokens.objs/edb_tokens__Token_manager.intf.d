lib/tokens/token_manager.mli: Edb_core Edb_store

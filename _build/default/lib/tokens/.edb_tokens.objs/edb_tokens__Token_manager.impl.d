lib/tokens/token_manager.ml: Array Edb_core Fun Hashtbl List Printf

lib/server/server_group.mli: Edb_core Edb_metrics Edb_store

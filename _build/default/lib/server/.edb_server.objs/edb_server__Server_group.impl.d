lib/server/server_group.ml: Edb_core Edb_metrics Edb_persist Filename Hashtbl List Printf Result String Sys

module Dll = Edb_util.Dll

type t = {
  records : Log_record.t Dll.t;
  (* The paper's P(x) pointers: item name -> the list node holding the
     unique retained record for that item. *)
  pointer : (string, Log_record.t Dll.node) Hashtbl.t;
}

let create () = { records = Dll.create (); pointer = Hashtbl.create 16 }

let latest_seq t =
  match Dll.last t.records with None -> 0 | Some node -> (Dll.value node).seq

let add t ~item ~seq =
  if seq <= latest_seq t then
    invalid_arg "Log_component.add: sequence numbers must increase";
  (match Hashtbl.find_opt t.pointer item with
  | None -> ()
  | Some stale ->
    Dll.remove t.records stale;
    Hashtbl.remove t.pointer item);
  let node = Dll.append t.records { Log_record.item; seq } in
  Hashtbl.replace t.pointer item node

let tail_after t ~seq =
  Dll.take_while_rev (fun (r : Log_record.t) -> r.seq > seq) t.records

let find_record t item =
  Option.map Dll.value (Hashtbl.find_opt t.pointer item)

let length t = Dll.length t.records

let to_list t = Dll.to_list t.records

let check_invariants t =
  let records = to_list t in
  let rec ordered = function
    | [] | [ _ ] -> true
    | (a : Log_record.t) :: (b :: _ as rest) -> a.seq < b.seq && ordered rest
  in
  let items = List.map (fun (r : Log_record.t) -> r.item) records in
  let distinct = List.sort_uniq String.compare items in
  if not (ordered records) then Error "log records out of sequence order"
  else if List.length distinct <> List.length items then
    Error "duplicate item record in log component"
  else if Hashtbl.length t.pointer <> List.length records then
    Error "pointer map size differs from record count"
  else
    let bad_pointer =
      List.find_opt
        (fun (r : Log_record.t) ->
          match find_record t r.item with
          | Some r' -> not (Log_record.equal r r')
          | None -> true)
        records
    in
    match bad_pointer with
    | Some r -> Error (Format.asprintf "pointer map misses record %a" Log_record.pp r)
    | None -> Ok ()

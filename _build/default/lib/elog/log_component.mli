(** One log component [L_i[j]]: updates originated at node [j], as known
    to node [i] (paper §4.2, Figure 1).

    Records are kept in origin order in a doubly-linked list. The key
    invariant — {e at most one record per data item} — is maintained by
    {!add}: adding [(x, m)] unlinks the previous record for [x] in O(1)
    through the per-item pointer map (the paper's [P(x)] array, realized
    as a hash map from item name to list node) and appends the new
    record at the tail. Consequently the component never holds more than
    one record per item, bounding the whole log vector at [n · N]
    records (§4.2).

    {!tail_after} extracts the records the recipient of a propagation is
    missing, walking backwards from the tail, in time linear in the
    number of records selected — not in the log length. This is what
    makes [SendPropagation] O(m) (§6). *)

type t

val create : unit -> t

val add : t -> item:string -> seq:int -> unit
(** [add t ~item ~seq] is the paper's [AddLogRecord]: append [(item,
    seq)] and unlink any older record for [item]. O(1). Sequence numbers
    must be added in strictly increasing order; violating this is a
    protocol bug and raises [Invalid_argument]. *)

val tail_after : t -> seq:int -> Log_record.t list
(** [tail_after t ~seq] is the records with sequence number strictly
    greater than [seq], oldest first. Time linear in the result
    length. *)

val latest_seq : t -> int
(** [latest_seq t] is the sequence number of the newest record, or [0]
    when empty. *)

val find_record : t -> string -> Log_record.t option
(** [find_record t item] is the (unique) retained record for [item], if
    any. O(1). *)

val length : t -> int
(** [length t] is the number of retained records — hence also the number
    of distinct items with a retained record. *)

val to_list : t -> Log_record.t list
(** [to_list t] is all retained records, oldest first. *)

val check_invariants : t -> (unit, string) result
(** [check_invariants t] verifies: strictly increasing sequence order;
    at most one record per item; pointer map consistent with the list.
    For tests. *)

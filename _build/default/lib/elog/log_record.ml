type t = { item : string; seq : int }

(* 8 bytes of item identifier + 8 bytes of sequence number. Item names in
   a real system would be fixed-width ids; charging a constant keeps the
   cost model aligned with the paper's "records are very short" (§4.2). *)
let wire_size = 16

let equal a b = String.equal a.item b.item && a.seq = b.seq

let pp fmt { item; seq } = Format.fprintf fmt "(%s,%d)" item seq

(** Regular log records (paper §4.2).

    A record [(x, m)] only registers {e that} data item [x] was updated
    and that the update was the [m]-th performed by its origin node
    ([m] is the origin's DBVV self-component at update time). It carries
    no operation payload, so records are constant-size — the property
    §6 relies on to bound message overhead at "constant amount of
    information per data item". *)

type t = { item : string; seq : int }

val wire_size : int
(** [wire_size] is the byte cost charged per record by the cost model:
    a fixed item-id slot plus a 64-bit sequence number. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

lib/elog/log_vector.mli: Log_component

lib/elog/log_component.ml: Edb_util Format Hashtbl List Log_record Option String

lib/elog/log_component.mli: Log_record

lib/elog/log_vector.ml: Array Log_component Printf

lib/elog/aux_log.ml: Edb_store Edb_util Edb_vv Hashtbl Queue

lib/elog/aux_log.mli: Edb_store Edb_vv

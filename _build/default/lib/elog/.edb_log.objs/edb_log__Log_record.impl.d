lib/elog/log_record.ml: Format String

lib/elog/log_record.mli: Format

type t = Log_component.t array

let create ~n =
  if n <= 0 then invalid_arg "Log_vector.create: dimension must be positive";
  Array.init n (fun _ -> Log_component.create ())

let dimension t = Array.length t

let component t j = t.(j)

let add t ~origin ~item ~seq = Log_component.add t.(origin) ~item ~seq

let total_records t =
  Array.fold_left (fun acc c -> acc + Log_component.length c) 0 t

let check_invariants t =
  let rec loop j =
    if j >= Array.length t then Ok ()
    else
      match Log_component.check_invariants t.(j) with
      | Ok () -> loop (j + 1)
      | Error msg -> Error (Printf.sprintf "component %d: %s" j msg)
  in
  loop 0

(** The log vector [L_i]: one {!Log_component} per origin node
    (paper §4.2).

    Component [j] holds the records of updates originated at node [j]
    that node [i] knows about, in origin order, deduplicated to the
    latest record per item. *)

type t

val create : n:int -> t
(** [create ~n] is a log vector with [n] empty components. *)

val dimension : t -> int

val component : t -> int -> Log_component.t
(** [component t j] is [L_i[j]]. *)

val add : t -> origin:int -> item:string -> seq:int -> unit
(** [add t ~origin ~item ~seq] runs [AddLogRecord] on component
    [origin]. *)

val total_records : t -> int
(** [total_records t] is the number of retained records across all
    components — bounded by [n · N] (paper §4.2). *)

val check_invariants : t -> (unit, string) result
(** All components' invariants. *)

lib/vv/version_vector.ml: Array Format

lib/vv/version_vector.mli: Format

type t = int array

type comparison = Equal | Dominates | Dominated | Concurrent

let create ~n =
  if n <= 0 then invalid_arg "Version_vector.create: dimension must be positive";
  Array.make n 0

let of_array a =
  Array.iter (fun v -> if v < 0 then invalid_arg "Version_vector.of_array: negative component") a;
  Array.copy a

let to_array t = Array.copy t

let copy t = Array.copy t

let dimension t = Array.length t

let get t j = t.(j)

let set t j v =
  if v < 0 then invalid_arg "Version_vector.set: negative component";
  t.(j) <- v

let incr t j = t.(j) <- t.(j) + 1

let check_dimensions a b =
  if Array.length a <> Array.length b then
    invalid_arg "Version_vector: dimension mismatch"

let merge_into t ~from =
  check_dimensions t from;
  for j = 0 to Array.length t - 1 do
    if from.(j) > t.(j) then t.(j) <- from.(j)
  done

let add_diff_into t ~newer ~older =
  check_dimensions t newer;
  check_dimensions t older;
  for l = 0 to Array.length t - 1 do
    let d = newer.(l) - older.(l) in
    if d < 0 then
      invalid_arg "Version_vector.add_diff_into: newer does not dominate older";
    t.(l) <- t.(l) + d
  done

let compare_vv a b =
  check_dimensions a b;
  let some_less = ref false and some_greater = ref false in
  for j = 0 to Array.length a - 1 do
    if a.(j) < b.(j) then some_less := true
    else if a.(j) > b.(j) then some_greater := true
  done;
  match (!some_less, !some_greater) with
  | false, false -> Equal
  | false, true -> Dominates
  | true, false -> Dominated
  | true, true -> Concurrent

let equal a b = compare_vv a b = Equal

let dominates_or_equal a b =
  match compare_vv a b with Equal | Dominates -> true | Dominated | Concurrent -> false

let strictly_dominates a b = compare_vv a b = Dominates

let concurrent a b = compare_vv a b = Concurrent

let sum t = Array.fold_left ( + ) 0 t

let conflicting_components a b =
  check_dimensions a b;
  let less = ref None and greater = ref None in
  Array.iteri
    (fun j bv ->
      if a.(j) < bv && !less = None then less := Some j
      else if a.(j) > bv && !greater = None then greater := Some j)
    b;
  match (!less, !greater) with
  | Some k, Some l -> Some (k, l)
  | None, _ | _, None -> None

let pp fmt t =
  Format.fprintf fmt "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
       Format.pp_print_int)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
